"""Planner-as-a-service daemon: ``python -m repro.plan.serve``.

A long-running planning server that keeps the expensive parts of a
search session *resident* between requests, so interactive callers
(notebooks, schedulers, CI sweeps) pay the setup cost once instead of
per invocation:

* **Interned problems.**  The first request ships a full pickled problem
  (graph/topology/profiler/training); the server builds the
  :class:`~repro.plan.Planner` once and keys it by the store-context
  digest.  Later requests -- from any client -- send the bare digest and
  skip the graph rebuild entirely (the warm path; see
  :mod:`repro.plan.client`).
* **Open store shards.**  Every admitted search runs with
  ``StoreConfig(root=<server root>, shared=True)``, so one process-wide
  :func:`~repro.search.store.shared_store` handle per shard stays open
  and parsed across requests instead of being re-read from disk each
  run.
* **Warm worker fleet.**  ``--cluster host:port,...`` points every
  search at a standing fleet of ``python -m repro.search.worker``
  daemons; ``--workers N`` selects local pool fan-out instead.
  Execution resources belong to the server -- cluster entries in client
  configs are ignored.
* **Elastic fleet.**  ``--join-bind host:port`` opens a registration
  listener (the worker protocol's ``join``/``join_ack`` frames, see
  :mod:`repro.search.exec.protocol`): a
  ``python -m repro.search.worker --join`` daemon announcing itself
  there is added to the standing fleet and every *subsequent* search
  dispatches to it -- the fleet grows between requests without a server
  restart (``ServeStats.workers_joined``).

Production behaviour:

* **Admission control.**  At most ``--queue-limit`` requests wait for a
  search slot; excess requests are *rejected with a reason*
  (``plan_reject``), never silently dropped or left hanging.
* **Request dedup.**  Concurrent identical requests -- same problem
  digest, backend, and normalized config -- collapse onto one in-flight
  search; every waiter gets the same :class:`~repro.plan.PlanResult`.
  Sound because searches are pure functions of (problem, backend,
  config): results are bit-identical for a fixed seed, so running the
  search twice could only waste cycles.
* **Fairness.**  Search slots are handed out round-robin across client
  sessions, so one client queueing 50 requests cannot starve another's
  single request.
* **Graceful drain.**  SIGTERM/SIGINT stop the accept loop, reject new
  requests with ``"server is draining"``, finish every queued and
  running search, flush the shared store shards, then exit 0.

Run::

    python -m repro.plan.serve --bind 0.0.0.0:7180 --store-root ~/.cache/repro

On startup the daemon prints ``REPRO-PLAN-SERVE <host> <port>`` to
stdout (with ``--bind host:0`` the kernel picks the port), which is what
:func:`spawn_local_server` and the CI ``serve-smoke`` job parse.

Only bind on trusted networks: requests and results travel as pickles
(see :mod:`repro.search.exec.protocol`).
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import os
import signal
import socket
import subprocess
import sys
import threading
import time
from collections import deque
from dataclasses import dataclass

from repro.plan.config import ExecutionConfig, SearchConfig, StoreConfig
from repro.plan.planner import Planner
from repro.search.exec.distributed import ClusterSpec, dedupe_cluster, parse_address
from repro.search.exec.protocol import (
    PROTOCOL_VERSION,
    SERVE_PROTOCOL_VERSION,
    ProtocolError,
    recv_msg,
    send_msg,
)
from repro.search.store import flush_shared_stores, shared_store

__all__ = ["PlanServer", "ServeStats", "serve", "spawn_local_server", "main"]

# A join registration is three small frames; a stalled joiner must not
# wedge the registration loop.
_JOIN_TIMEOUT_S = 10.0


def _log(msg: str) -> None:
    print(f"[repro-plan-serve pid={os.getpid()}] {msg}", file=sys.stderr, flush=True)


@dataclass
class ServeStats:
    """Monotonic counters; live gauges ride along in ``stats_dict``."""

    requests: int = 0  # plan_requests received, every outcome
    completed: int = 0  # searches that produced a PlanResult
    searches: int = 0  # searches actually started (deduped requests start none)
    deduped: int = 0  # requests that piggybacked on an identical in-flight search
    rejected: int = 0  # admission-control rejections (queue full / draining)
    errors: int = 0  # bad requests + searches that raised
    unknown_digest: int = 0  # digest-only requests naming a problem we don't hold
    problems_interned: int = 0  # distinct problems built and kept resident
    problem_hits: int = 0  # requests resolved against an already-interned problem
    workers_joined: int = 0  # daemons added to the fleet via the join listener


def _request_key(digest: str, backend: str, config: SearchConfig) -> str:
    """Dedup identity of a request: problem digest + backend + canonical
    JSON of the *normalized* config (sorted keys, so dict order never
    splits identical requests)."""
    return json.dumps(
        [digest, backend, config.to_dict()], sort_keys=True, separators=(",", ":")
    )


class _Job:
    """One admitted search plus everyone waiting on its result."""

    __slots__ = ("key", "digest", "backend", "config", "planner", "warm", "setup_s", "waiters")

    def __init__(self, key, digest, backend, config, planner, warm, setup_s):
        self.key = key
        self.digest = digest
        self.backend = backend
        self.config = config
        self.planner = planner
        self.warm = warm
        self.setup_s = setup_s
        # [(session, request id), ...]; index 0 is the originator.
        self.waiters: list[tuple["_Session", object]] = []


class _Session:
    """One client connection: a reader thread plus a send-serialized socket."""

    def __init__(self, conn: socket.socket, sid: int, peer: str):
        self.conn = conn
        self.sid = sid
        self.peer = peer
        self.pending: deque[_Job] = deque()  # jobs this session is queueing
        self.closed = False
        self._send_lock = threading.Lock()

    def send(self, msg: dict, *, pickled: bool = False) -> None:
        """Best-effort reply; a dead client marks the session closed."""
        if self.closed:
            return
        try:
            with self._send_lock:
                send_msg(self.conn, msg, pickled=pickled)
        except (OSError, ProtocolError):
            self.closed = True


class PlanServer:
    """The resident planning service (see module docstring).

    Thread model: the calling thread runs the accept loop, one reader
    thread per client session parses requests, and ``serve_workers``
    search threads drain the per-session queues round-robin.  All
    scheduling state -- sessions, per-session deques, the in-flight
    dedup map, queue depth -- is guarded by one condition variable
    (``_work``).
    """

    def __init__(
        self,
        bind: str = "127.0.0.1:0",
        *,
        store_root: str | None = None,
        serve_workers: int = 2,
        queue_limit: int = 32,
        exec_workers: int | None = None,
        cluster: tuple[str, ...] = (),
        join_bind: str | None = None,
        request_delay_s: float = 0.0,
        announce_stream=None,
    ):
        host, _, port = bind.rpartition(":")
        if not host:
            raise ValueError(f"--bind {bind!r} is not of the form host:port")
        self._host, self._port = host, int(port)
        self.store_root = store_root
        self.serve_workers = max(1, int(serve_workers))
        self.queue_limit = max(1, int(queue_limit))
        self.exec_workers = exec_workers
        self.cluster = dedupe_cluster(cluster) if cluster else ()
        self.join_bind = join_bind
        # "host:port" of the request listener / registration listener
        # once serve_forever binds them (the latter stays None when
        # join_bind is unset).
        self.address: str | None = None
        self.join_address: str | None = None
        self.request_delay_s = request_delay_s  # test aid: widens the dedup window
        self._announce_stream = announce_stream

        self.stats = ServeStats()
        self._work = threading.Condition()
        self._sessions: list[_Session] = []
        self._inflight: dict[str, _Job] = {}  # dedup map: queued or running jobs
        self._queued = 0
        self._running = 0
        self._rr = 0  # round-robin cursor over _sessions
        self._next_sid = 0
        self._draining = threading.Event()
        self._srv: socket.socket | None = None
        self._join_srv: socket.socket | None = None
        self._problems: dict[str, Planner] = {}  # store-context digest -> planner
        self._problems_lock = threading.Lock()

    # -- lifecycle ---------------------------------------------------------
    def serve_forever(self, *, install_signal_handlers: bool = True) -> None:
        """Bind, announce, and serve until :meth:`shutdown` (or SIGTERM)."""
        srv = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        srv.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        srv.bind((self._host, self._port))
        srv.listen(16)
        self._srv = srv
        bound_host, bound_port = srv.getsockname()[:2]
        self.address = f"{bound_host}:{bound_port}"
        stream = self._announce_stream if self._announce_stream is not None else sys.stdout
        print(f"REPRO-PLAN-SERVE {bound_host} {bound_port}", file=stream, flush=True)
        if install_signal_handlers and threading.current_thread() is threading.main_thread():
            for sig in (signal.SIGTERM, signal.SIGINT):
                signal.signal(sig, lambda *_: self.shutdown())

        join_thread: threading.Thread | None = None
        if self.join_bind is not None:
            jhost, jport = parse_address(self.join_bind, allow_ephemeral=True)
            jsrv = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            jsrv.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            jsrv.bind((jhost, jport))
            jsrv.listen(8)
            self._join_srv = jsrv
            self.join_address = f"{jhost}:{jsrv.getsockname()[1]}"
            _log(f"worker registration listener on {self.join_address}")
            join_thread = threading.Thread(
                target=self._join_loop, args=(jsrv,), name="plan-join", daemon=True
            )
            join_thread.start()

        workers = [
            threading.Thread(target=self._work_loop, name=f"plan-search-{i}", daemon=True)
            for i in range(self.serve_workers)
        ]
        for t in workers:
            t.start()

        # Wake periodically: a close() from shutdown() on another thread
        # does not interrupt a blocked accept() (only the signal path
        # does), so a drain must never rely on it.
        srv.settimeout(0.5)
        try:
            while not self._draining.is_set():
                try:
                    conn, addr = srv.accept()
                except TimeoutError:
                    continue
                except OSError:
                    break  # shutdown() closed the listener
                conn.settimeout(None)
                peer = f"{addr[0]}:{addr[1]}"
                with self._work:
                    session = _Session(conn, self._next_sid, peer)
                    self._next_sid += 1
                    self._sessions.append(session)
                threading.Thread(
                    target=self._read_session,
                    args=(session,),
                    name=f"plan-session-{session.sid}",
                    daemon=True,
                ).start()
                _log(f"client connected from {peer} (session {session.sid})")
        finally:
            self._draining.set()
            if self._join_srv is not None:
                try:
                    self._join_srv.close()
                except OSError:
                    pass
            with self._work:
                self._work.notify_all()
            for t in workers:
                t.join()
            if join_thread is not None:
                join_thread.join(timeout=_JOIN_TIMEOUT_S + 1.0)
            flushed = flush_shared_stores()
            with self._work:
                sessions = list(self._sessions)
            for s in sessions:
                s.closed = True
                try:
                    s.conn.close()
                except OSError:
                    pass
            try:
                srv.close()
            except OSError:
                pass
            _log(f"drained ({flushed} store evaluation(s) flushed); bye")

    def shutdown(self) -> None:
        """Begin a graceful drain: stop accepting, finish queued and
        running searches, flush the shared stores, exit.  Safe to call
        from a signal handler or any thread; idempotent."""
        if self._draining.is_set():
            return
        _log("drain requested: no longer accepting; finishing in-flight searches")
        self._draining.set()
        if self._srv is not None:
            try:
                self._srv.close()
            except OSError:
                pass
        if self._join_srv is not None:
            try:
                self._join_srv.close()
            except OSError:
                pass
        with self._work:
            self._work.notify_all()

    # -- worker registration -----------------------------------------------
    def _join_loop(self, listener: socket.socket) -> None:
        """Accept ``join`` registrations until the listener is closed.

        A registered daemon is appended to :attr:`cluster`, so the next
        search a request admits dispatches to it (``_normalize_config``
        reads the fleet per request) -- the listener never touches a
        search already running.
        """
        # Same periodic wake as the request listener: a cross-thread
        # close() never interrupts a blocked accept().
        listener.settimeout(0.5)
        while not self._draining.is_set():
            try:
                conn, addr = listener.accept()
            except TimeoutError:
                continue
            except OSError:
                return  # listener closed (drain)
            peer = f"{addr[0]}:{addr[1]}"
            try:
                try:
                    conn.settimeout(_JOIN_TIMEOUT_S)
                    msg = recv_msg(conn)
                    if msg is None or msg.get("type") != "join":
                        raise ProtocolError(f"expected join, got {msg!r}")
                    ack = {"type": "join_ack", "version": PROTOCOL_VERSION}
                    if msg.get("version") != PROTOCOL_VERSION:
                        ack["error"] = (
                            f"worker speaks protocol v{msg.get('version')}, "
                            f"server speaks v{PROTOCOL_VERSION}"
                        )
                        send_msg(conn, ack)
                        raise ProtocolError(ack["error"])
                    advertise = str(msg.get("advertise") or "")
                    if not advertise:
                        ack["error"] = (
                            "join carries no advertise address (start the "
                            "worker with --bind and --join)"
                        )
                        send_msg(conn, ack)
                        raise ProtocolError(ack["error"])
                    adv = ClusterSpec.parse(advertise).address
                    send_msg(conn, ack)
                finally:
                    try:
                        conn.close()
                    except OSError:
                        pass
            except (OSError, ProtocolError, ValueError) as exc:
                _log(f"worker join from {peer} rejected: {exc!r}")
                continue
            with self._work:
                known = {ClusterSpec.parse(e).address for e in self.cluster}
                if adv in known:
                    _log(f"worker {advertise} re-joined (already in the fleet)")
                    continue
                # Tuple replacement is atomic under the GIL, so readers
                # (_normalize_config) never see a half-built fleet.
                self.cluster = self.cluster + (advertise,)
                self.stats.workers_joined += 1
            _log(
                f"worker {advertise} joined the fleet "
                f"(pid={msg.get('pid')}, capacity={msg.get('capacity')}); "
                f"fleet is now {len(self.cluster)} worker(s)"
            )

    # -- per-session reader ------------------------------------------------
    def _read_session(self, session: _Session) -> None:
        try:
            hello = recv_msg(session.conn)
            if hello is None:
                return
            if hello.get("type") != "plan_hello":
                raise ProtocolError(f"expected plan_hello, got {hello.get('type')!r}")
            session.send(
                {
                    "type": "plan_hello_ack",
                    "version": SERVE_PROTOCOL_VERSION,
                    "pid": os.getpid(),
                }
            )
            if hello.get("version") != SERVE_PROTOCOL_VERSION:
                _log(
                    f"refusing client speaking plan protocol v{hello.get('version')} "
                    f"(this server speaks v{SERVE_PROTOCOL_VERSION})"
                )
                return
            while True:
                msg = recv_msg(session.conn)
                if msg is None or msg.get("type") == "bye":
                    return
                self._handle(session, msg)
        except (ProtocolError, OSError) as exc:
            _log(f"session {session.sid} ended abnormally: {exc!r}")
        finally:
            self._detach(session)

    def _detach(self, session: _Session) -> None:
        """Remove a dead session; re-home its queued jobs to surviving
        dedup waiters (another client may be waiting on them)."""
        with self._work:
            session.closed = True
            if session in self._sessions:
                self._sessions.remove(session)
            for job in list(session.pending):
                survivors = [
                    (s, rid) for (s, rid) in job.waiters if s is not session and not s.closed
                ]
                if survivors:
                    job.waiters = survivors
                    survivors[0][0].pending.append(job)
                else:
                    self._inflight.pop(job.key, None)
                    self._queued -= 1
            session.pending.clear()
            self._work.notify_all()
        try:
            session.conn.close()
        except OSError:
            pass
        _log(f"session {session.sid} ({session.peer}) closed")

    # -- request handling --------------------------------------------------
    def _normalize_config(self, data: dict) -> SearchConfig:
        """The runnable config: client search *policy*, server *resources*.

        The store always points at the server's root with shared handles
        (resident mode); execution fan-out comes from the server's
        ``--workers``/``--cluster`` -- a client cannot point this server
        at its own cluster, and a client-side ``distributed`` request
        without a server fleet falls back to ``auto``.
        """
        cfg = SearchConfig.from_dict(data) if not isinstance(data, SearchConfig) else data
        store = StoreConfig(root=self.store_root, shared=self.store_root is not None)
        ex = cfg.execution
        if self.cluster:
            ex = ExecutionConfig(
                workers=ex.workers, cache_size=ex.cache_size,
                executor="distributed", cluster=self.cluster,
            )
        else:
            executor = "auto" if ex.executor == "distributed" else ex.executor
            workers = self.exec_workers if self.exec_workers is not None else ex.workers
            ex = ExecutionConfig(
                workers=workers, cache_size=ex.cache_size, executor=executor, cluster=(),
            )
        return cfg.replace(store=store, execution=ex)

    def _handle(self, session: _Session, msg: dict) -> None:
        kind = msg.get("type")
        if kind == "stats":
            session.send({"type": "stats_reply", "stats": self.stats_dict()})
            return
        if kind != "plan_request":
            raise ProtocolError(f"unexpected message {kind!r} from client")

        self.stats.requests += 1
        req_id = msg.get("id")
        try:
            backend = str(msg["backend"])
            config = self._normalize_config(msg.get("config") or {})
        except Exception as exc:
            self.stats.errors += 1
            session.send({"type": "plan_error", "id": req_id, "message": f"bad request: {exc!r}"})
            return

        # Resolve the problem: intern a shipped one, or look a digest up.
        t0 = time.perf_counter()
        digest = msg.get("digest")
        planner: Planner | None = None
        if msg.get("problem") is not None:
            problem = msg["problem"]
            try:
                planner = Planner(
                    problem["graph"],
                    problem["topology"],
                    profiler=problem.get("profiler"),
                    training=bool(problem.get("training", True)),
                )
                digest = planner.store_context(config)
            except Exception as exc:
                self.stats.errors += 1
                session.send(
                    {"type": "plan_error", "id": req_id, "message": f"bad problem: {exc!r}"}
                )
                return
        if digest is None:
            self.stats.errors += 1
            session.send(
                {
                    "type": "plan_error",
                    "id": req_id,
                    "message": "plan_request carries neither a problem nor a digest",
                }
            )
            return
        warm = False
        with self._problems_lock:
            known = self._problems.get(digest)
            if known is not None:
                planner = known  # reuse the resident problem even if one was shipped
                warm = True
                self.stats.problem_hits += 1
            elif planner is not None:
                self._problems[digest] = planner
                self.stats.problems_interned += 1
            else:
                self.stats.unknown_digest += 1
                session.send({"type": "plan_unknown_problem", "id": req_id, "digest": digest})
                return
        if self.store_root is not None:
            # Touch the shard handle now so its open/parse cost lands in
            # setup (resident and therefore near-zero on the warm path),
            # not inside the first search's wall time.
            try:
                shared_store(self.store_root, digest)
            except OSError as exc:
                _log(f"store shard unavailable for {digest[:12]}: {exc!r}")
        setup_s = time.perf_counter() - t0

        key = _request_key(digest, backend, config)
        with self._work:
            job = self._inflight.get(key)
            if job is not None:
                # Identical search already queued or running: piggyback.
                job.waiters.append((session, req_id))
                self.stats.deduped += 1
                return
            if self._draining.is_set():
                self.stats.rejected += 1
                session.send(
                    {"type": "plan_reject", "id": req_id, "reason": "server is draining"}
                )
                return
            if self._queued >= self.queue_limit:
                self.stats.rejected += 1
                session.send(
                    {
                        "type": "plan_reject",
                        "id": req_id,
                        "reason": (
                            f"queue full ({self._queued} request(s) waiting, "
                            f"limit {self.queue_limit}); retry later"
                        ),
                    }
                )
                return
            job = _Job(key, digest, backend, config, planner, warm, setup_s)
            job.waiters.append((session, req_id))
            self._inflight[key] = job
            session.pending.append(job)
            self._queued += 1
            self._work.notify()

    # -- search workers ----------------------------------------------------
    def _next_job_locked(self) -> _Job | None:
        """Round-robin over sessions' queues (fairness; caller holds _work)."""
        n = len(self._sessions)
        for i in range(n):
            s = self._sessions[(self._rr + i) % n]
            if s.pending:
                self._rr = (self._rr + i + 1) % n
                return s.pending.popleft()
        return None

    def _work_loop(self) -> None:
        while True:
            with self._work:
                job = self._next_job_locked()
                while job is None:
                    if self._draining.is_set():
                        return  # queue drained; running jobs belong to other threads
                    self._work.wait(timeout=0.5)
                    job = self._next_job_locked()
                self._queued -= 1
                self._running += 1
                self.stats.searches += 1
            try:
                self._run_job(job)
            finally:
                with self._work:
                    self._running -= 1

    def _run_job(self, job: _Job) -> None:
        if self.request_delay_s > 0.0:
            time.sleep(self.request_delay_s)  # test/debug aid (--request-delay-s)
        t0 = time.perf_counter()
        result = None
        error: str | None = None
        try:
            result = job.planner.search(job.backend, job.config)
        except Exception as exc:
            error = repr(exc)
        search_s = time.perf_counter() - t0
        # Snapshot the waiters *after* unpublishing the job, atomically:
        # a duplicate arriving between the two would otherwise attach to
        # a job nobody will ever answer again.
        with self._work:
            self._inflight.pop(job.key, None)
            waiters = list(job.waiters)
        if error is not None:
            self.stats.errors += 1
            _log(f"search failed for {len(waiters)} waiter(s): {error}")
            for s, rid in waiters:
                s.send({"type": "plan_error", "id": rid, "message": error})
            return
        self.stats.completed += 1
        _log(
            f"search done: backend={job.backend} digest={job.digest[:12]} "
            f"warm={job.warm} waiters={len(waiters)} "
            f"setup={job.setup_s * 1e3:.1f}ms search={search_s:.2f}s"
        )
        for s, rid in waiters:
            s.send(
                {
                    "type": "plan_result",
                    "id": rid,
                    "result": result,
                    "digest": job.digest,
                    "warm": job.warm,
                    "setup_s": job.setup_s,
                    "search_s": search_s,
                },
                pickled=True,
            )

    # -- introspection -----------------------------------------------------
    def stats_dict(self) -> dict:
        d = dataclasses.asdict(self.stats)
        with self._work:
            d["queued"] = self._queued
            d["running"] = self._running
            d["sessions"] = len(self._sessions)
            d["cluster"] = list(self.cluster)
        d["problems_resident"] = len(self._problems)
        d["join_address"] = self.join_address
        d["draining"] = self._draining.is_set()
        return d


def serve(bind: str = "127.0.0.1:0", **kwargs) -> None:
    """Construct a :class:`PlanServer` and serve until SIGTERM."""
    PlanServer(bind, **kwargs).serve_forever()


def spawn_local_server(
    *,
    store_root: str | None = None,
    serve_workers: int = 2,
    queue_limit: int = 32,
    workers: int | None = None,
    cluster: tuple[str, ...] = (),
    join_bind: str | None = None,
    request_delay_s: float = 0.0,
    env: dict | None = None,
) -> tuple["subprocess.Popen", str]:
    """Start a loopback planning server subprocess; returns ``(proc, "host:port")``.

    Mirrors :func:`repro.search.worker.spawn_local_worker`: binds port 0,
    parses the ``REPRO-PLAN-SERVE`` announce line, and leaves process
    ownership with the caller (``proc.send_signal(SIGTERM)`` for a
    graceful drain, ``proc.kill()`` to abort).
    """
    import repro

    src_root = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    full_env = dict(os.environ if env is None else env)
    existing = full_env.get("PYTHONPATH", "")
    full_env["PYTHONPATH"] = src_root + (os.pathsep + existing if existing else "")
    args = [sys.executable, "-m", "repro.plan.serve", "--bind", "127.0.0.1:0"]
    if store_root is not None:
        args += ["--store-root", str(store_root)]
    if serve_workers != 2:
        args += ["--serve-workers", str(serve_workers)]
    if queue_limit != 32:
        args += ["--queue-limit", str(queue_limit)]
    if workers is not None:
        args += ["--workers", str(workers)]
    if cluster:
        args += ["--cluster", ",".join(cluster)]
    if join_bind is not None:
        args += ["--join-bind", join_bind]
    if request_delay_s > 0.0:
        args += ["--request-delay-s", str(request_delay_s)]
    proc = subprocess.Popen(args, stdout=subprocess.PIPE, text=True, env=full_env)
    assert proc.stdout is not None
    line = proc.stdout.readline().strip()
    parts = line.split()
    if len(parts) != 3 or parts[0] != "REPRO-PLAN-SERVE":
        proc.kill()
        raise RuntimeError(f"planning server failed to announce itself (got {line!r})")
    return proc, f"{parts[1]}:{parts[2]}"


def _smoke() -> int:
    """Self-test for CI: dedup of concurrent identical requests, a warm
    follow-up, and a graceful SIGTERM drain, all over loopback."""
    import tempfile

    from repro.machine.clusters import single_node
    from repro.models.lenet import lenet
    from repro.plan.client import PlanClient
    from repro.plan.config import BudgetConfig

    graph, topology = lenet(batch=8), single_node(2, "p100")
    cfg = SearchConfig(budget=BudgetConfig(iterations=40), inits=("data_parallel",), seed=0)
    with tempfile.TemporaryDirectory() as tmp:
        proc, addr = spawn_local_server(store_root=tmp, request_delay_s=0.5)
        try:
            results: list = [None, None]

            def one(i: int) -> None:
                with PlanClient(addr) as c:
                    results[i] = c.plan(graph, topology, config=cfg)

            threads = [threading.Thread(target=one, args=(i,)) for i in range(2)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert all(r is not None for r in results), "a smoke request failed"
            assert results[0].best_cost_us == results[1].best_cost_us

            with PlanClient(addr) as c:
                stats = c.stats()
                assert stats["searches"] == 1, f"dedup failed: {stats}"
                assert stats["deduped"] == 1, f"dedup failed: {stats}"
                # A new client, same problem: the server resolves it
                # against the interned planner (the warm path).
                warm = c.plan(graph, topology, config=cfg.replace(seed=1))
                assert c.stats()["problem_hits"] >= 1
                assert warm.extras["serve"]["warm"] is True

            proc.send_signal(signal.SIGTERM)
            rc = proc.wait(timeout=60)
            assert rc == 0, f"drain exited {rc}"
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=10)
    print("plan-serve smoke: PASS (dedup=1, warm problem hit, clean drain)")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.plan.serve",
        description="Long-running planning server (planner-as-a-service).",
    )
    parser.add_argument(
        "--bind",
        default="127.0.0.1:7180",
        metavar="HOST:PORT",
        help="address to listen on (port 0 = kernel-assigned; default %(default)s)",
    )
    parser.add_argument(
        "--store-root",
        default=None,
        metavar="DIR",
        help="persistent strategy-store root every search shares (default: store off)",
    )
    parser.add_argument(
        "--serve-workers",
        type=int,
        default=2,
        metavar="N",
        help="searches run concurrently (default %(default)s)",
    )
    parser.add_argument(
        "--queue-limit",
        type=int,
        default=32,
        metavar="N",
        help="max requests waiting for a search slot before rejection (default %(default)s)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="local process-pool fan-out per search (default: the client config's)",
    )
    parser.add_argument(
        "--cluster",
        default="",
        metavar="HOST:PORT,...",
        help="standing worker-daemon fleet every search dispatches to",
    )
    parser.add_argument(
        "--join-bind",
        default=None,
        metavar="HOST:PORT",
        help="open a worker registration listener here (port 0 = "
        "kernel-assigned): joining daemons grow the fleet between requests",
    )
    parser.add_argument(
        "--request-delay-s",
        type=float,
        default=0.0,
        help=argparse.SUPPRESS,  # test/debug aid: sleep before each search
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="run the loopback self-test (spawns a server subprocess) and exit",
    )
    args = parser.parse_args(argv)
    if args.smoke:
        return _smoke()
    cluster = tuple(a.strip() for a in args.cluster.split(",") if a.strip())
    serve(
        args.bind,
        store_root=args.store_root,
        serve_workers=args.serve_workers,
        queue_limit=args.queue_limit,
        exec_workers=args.workers,
        cluster=cluster,
        join_bind=args.join_bind,
        request_delay_s=args.request_delay_s,
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
