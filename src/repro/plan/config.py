"""Structured, serializable search configuration.

:class:`SearchConfig` replaces the kwarg explosion that ``optimize()``
had accreted (14 growing keyword arguments) with a frozen dataclass of
frozen sub-configs: budget, execution fan-out, persistent store, and
early stop each get their own small namespace, every backend consumes
the same object, and the whole thing round-trips losslessly through
JSON -- the prerequisite for shipping configs to remote search workers
(the ROADMAP's ``ChainSpec`` dispatch seam).

Use :meth:`SearchConfig.replace` (or :func:`dataclasses.replace` on any
sub-config) to derive variants::

    cfg = SearchConfig(budget=BudgetConfig(iterations=500), seed=0)
    warm = cfg.replace(store=StoreConfig(root="~/.cache/repro"))

``from_dict`` rejects unknown keys at every nesting level, so a config
serialized by a newer version fails loudly instead of silently dropping
fields.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.search.parallel import DEFAULT_CACHE_SIZE

__all__ = [
    "BudgetConfig",
    "ExecutionConfig",
    "StoreConfig",
    "EarlyStopConfig",
    "SearchConfig",
]


def _check_keys(cls, data: Mapping[str, Any], label: str) -> None:
    if not isinstance(data, Mapping):
        raise ValueError(f"{label} must be a mapping, got {type(data).__name__}")
    known = {f.name for f in dataclasses.fields(cls)}
    unknown = sorted(set(data) - known)
    if unknown:
        raise ValueError(
            f"unknown key(s) {unknown} for {label}; valid keys: {sorted(known)}"
        )


@dataclass(frozen=True)
class BudgetConfig:
    """Iteration/time budget of one search chain (legacy ``budget_iters``
    and friends)."""

    iterations: int = 1000
    time_s: float | None = None
    # Stall criterion fraction (Section 6.2 criterion (2)); None disables.
    no_improve_frac: float | None = 0.5
    # Adaptive budget reallocation between chains (opt-in; see
    # repro.search.mcmc).
    adaptive: bool = False
    # SearchTrace checkpoint cadence (0 = final checkpoint only).
    checkpoint_every: int = 0

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "BudgetConfig":
        _check_keys(cls, data, "BudgetConfig")
        return cls(**data)


@dataclass(frozen=True)
class ExecutionConfig:
    """How chains execute: executor selection, fan-out, and cache size.

    ``executor`` names a registered chain executor
    (:mod:`repro.search.exec`): ``"auto"`` (distributed when ``cluster``
    is non-empty, else pool when ``workers > 1``, else in-process),
    ``"inprocess"``, ``"pool"``, or ``"distributed"`` -- the last
    dispatching chains to the
    ``python -m repro.search.worker`` daemons listed in ``cluster`` as
    ``"host:port"`` strings.  Results are bit-identical across executors
    for a fixed seed set; the choice is pure capacity.

    ``join_bind`` (``"host:port"``, port 0 for kernel-assigned) makes
    the distributed coordinator open a registration listener so
    ``python -m repro.search.worker --join`` daemons can enter the
    fleet mid-search; ``None`` keeps the fleet fixed at dispatch time.
    """

    workers: int = 1
    cache_size: int = DEFAULT_CACHE_SIZE
    executor: str = "auto"
    cluster: tuple[str, ...] = ()
    join_bind: str | None = None

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ExecutionConfig":
        _check_keys(cls, data, "ExecutionConfig")
        kwargs: dict[str, Any] = dict(data)
        if "cluster" in kwargs:
            # JSON has no tuples: round-trip the address list losslessly.
            kwargs["cluster"] = tuple(kwargs["cluster"])
        return cls(**kwargs)


@dataclass(frozen=True)
class StoreConfig:
    """Persistent cross-run strategy store (``None`` root disables it).

    ``shared=True`` makes searches reuse one process-wide open handle per
    shard (:func:`repro.search.store.shared_store`) instead of re-opening
    and re-parsing the shard each run -- the resident-state mode the
    planning server (:mod:`repro.plan.serve`) forces on every request.
    Result-neutral; per-run warm/cold store accounting is what changes
    (entries this process recorded stay "cold" across later searches).
    """

    root: str | None = None
    shared: bool = False

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "StoreConfig":
        _check_keys(cls, data, "StoreConfig")
        return cls(**data)


@dataclass(frozen=True)
class EarlyStopConfig:
    """Target-cost early stop broadcast across chains (``None`` disables)."""

    cost_us: float | None = None

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "EarlyStopConfig":
        _check_keys(cls, data, "EarlyStopConfig")
        return cls(**data)


@dataclass(frozen=True)
class SearchConfig:
    """Everything a :class:`~repro.plan.Planner` backend needs besides the
    problem itself.

    The problem -- ``(graph, topology, profiler, training)`` -- lives on
    the :class:`~repro.plan.Planner`; the config is pure search policy
    and therefore serializable.  ``backend_options`` carries
    backend-specific knobs keyed by backend name (e.g.
    ``{"reinforce": {"episodes": 300}}``); each backend validates its own
    option keys and ignores the other backends' entries.
    """

    budget: BudgetConfig = BudgetConfig()
    execution: ExecutionConfig = ExecutionConfig()
    store: StoreConfig = StoreConfig()
    early_stop: EarlyStopConfig = EarlyStopConfig()
    inits: tuple[str, ...] = ("data_parallel", "random")
    seed: int = 0
    # Timeline algorithm the chains' simulators run: "auto" (the
    # default: per-proposal routing between an identity no-op, change
    # propagation, and the cut-time repair -- see repro.sim.simulator),
    # "delta" (cut-time incremental repair), "propagate" (change
    # propagation with branch skipping, see repro.sim.propagate), or
    # "full" (from-scratch).  Result-neutral -- all four are
    # bit-identical -- and serialized like every other field, so remote
    # ChainSpec dispatch honors it.
    algorithm: str = "auto"
    beta_scale: float = 50.0
    backend_options: dict = field(default_factory=dict)

    # -- derivation --------------------------------------------------------
    def replace(self, **changes: Any) -> "SearchConfig":
        """A copy with the given top-level fields replaced."""
        return dataclasses.replace(self, **changes)

    def options(self, backend: str) -> dict:
        """This backend's entry in ``backend_options`` (empty if absent)."""
        opts = self.backend_options.get(backend, {})
        if not isinstance(opts, Mapping):
            raise ValueError(
                f"backend_options[{backend!r}] must be a mapping, got {type(opts).__name__}"
            )
        return dict(opts)

    # -- serialization -----------------------------------------------------
    def to_dict(self) -> dict:
        """A JSON-safe nested dict (tuples become lists)."""
        return {
            "budget": dataclasses.asdict(self.budget),
            "execution": {
                **dataclasses.asdict(self.execution),
                "cluster": list(self.execution.cluster),
            },
            "store": dataclasses.asdict(self.store),
            "early_stop": dataclasses.asdict(self.early_stop),
            "inits": list(self.inits),
            "seed": self.seed,
            "algorithm": self.algorithm,
            "beta_scale": self.beta_scale,
            "backend_options": {k: dict(v) for k, v in self.backend_options.items()},
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SearchConfig":
        """Inverse of :meth:`to_dict`; rejects unknown keys at every level."""
        _check_keys(cls, data, "SearchConfig")
        kwargs: dict[str, Any] = dict(data)
        for name, sub in (
            ("budget", BudgetConfig),
            ("execution", ExecutionConfig),
            ("store", StoreConfig),
            ("early_stop", EarlyStopConfig),
        ):
            if name in kwargs and not isinstance(kwargs[name], sub):
                kwargs[name] = sub.from_dict(kwargs[name])
        if "inits" in kwargs:
            kwargs["inits"] = tuple(kwargs["inits"])
        if "backend_options" in kwargs:
            opts = kwargs["backend_options"]
            if not isinstance(opts, Mapping):
                raise ValueError("backend_options must be a mapping of backend name -> options")
            kwargs["backend_options"] = {k: dict(v) for k, v in opts.items()}
        return cls(**kwargs)

    def to_json(self, **dumps_kwargs: Any) -> str:
        return json.dumps(self.to_dict(), **dumps_kwargs)

    @classmethod
    def from_json(cls, payload: str) -> "SearchConfig":
        return cls.from_dict(json.loads(payload))
