"""Built-in search backends: ``mcmc``, ``exhaustive``, ``optcnn``, ``reinforce``.

Each backend adapts one search engine to the common
:class:`~repro.plan.registry.SearchBackend` protocol: consume a
:class:`~repro.plan.config.SearchConfig`, search the planner's
``(graph, topology)`` problem, return a
:class:`~repro.plan.result.PlanResult` whose cost/metrics are evaluated
on the FlexFlow simulator substrate.  The MCMC orchestration (chain
fan-out, persistent store wiring, accounting aggregation) *lives here
now*; ``repro.search.optimizer.optimize`` is a thin compatibility
wrapper over ``Planner.search("mcmc", ...)``.

Store sharing
-------------
The ``mcmc`` and ``exhaustive`` backends address the persistent
:class:`~repro.search.store.StrategyStore` under the *same* context
digest (graph/topology/training/``config.algorithm``/noise), so a
``Planner.compare`` with a store configured lets the second backend
warm-start from full-strategy evaluations the first one flushed.  This
is sound because the delta and full simulation algorithms produce
exactly equal timelines (``tests/sim`` locks ``tol=0.0`` equality), so a
full-strategy cost is interchangeable between them.
"""

from __future__ import annotations

import time
import warnings
from dataclasses import replace
from functools import reduce
from typing import Any, Mapping

import numpy as np

from repro.plan.config import SearchConfig
from repro.plan.errors import SearchError
from repro.plan.result import PlanResult
from repro.plan.registry import register_backend
from repro.search.cache import CacheStats
from repro.search.mcmc import MCMCConfig
from repro.search.parallel import ChainSpec, run_chains
from repro.search.store import StoreStats, StrategyStore, shared_store
from repro.sim.simulator import simulate_strategy
from repro.soap.presets import data_parallelism, expert_strategy
from repro.soap.space import ConfigSpace
from repro.soap.strategy import Strategy

__all__ = [
    "McmcBackend",
    "ExhaustiveBackend",
    "OptCNNBackend",
    "ReinforceBackend",
    "register_builtins",
]


def _backend_options(config: SearchConfig, name: str, defaults: Mapping[str, Any]) -> dict:
    """This backend's options merged over ``defaults``; unknown keys fail."""
    opts = config.options(name)
    unknown = sorted(set(opts) - set(defaults))
    if unknown:
        raise ValueError(
            f"unknown backend_options key(s) {unknown} for backend {name!r}; "
            f"valid keys: {sorted(defaults)}"
        )
    merged = dict(defaults)
    merged.update(opts)
    return merged


class McmcBackend:
    """The paper's execution optimizer: multi-start MCMC over SOAP space."""

    name = "mcmc"

    def run(self, planner, config: SearchConfig) -> PlanResult:
        _backend_options(config, self.name, {})  # policy lives in SearchConfig itself
        graph, topology = planner.graph, planner.topology
        profiler, training = planner.profiler, planner.training
        budget = config.budget
        workers = max(1, config.execution.workers)
        space = ConfigSpace(graph, topology)
        rng = np.random.default_rng(config.seed)

        candidates: dict[str, Strategy] = {}
        kind_counts: dict[str, int] = {}
        for kind in config.inits:
            if kind == "data_parallel":
                strat = data_parallelism(graph, topology)
            elif kind == "expert":
                strat = expert_strategy(graph, topology)
            elif kind == "random":
                strat = space.random_strategy(rng)
            else:
                raise ValueError(f"unknown init {kind!r}")
            # Repeated kinds (e.g. one random chain per worker) get numbered
            # names so every occurrence becomes its own chain.
            n = kind_counts.get(kind, 0)
            kind_counts[kind] = n + 1
            candidates[kind if n == 0 else f"{kind}_{n + 1}"] = strat

        specs = [
            ChainSpec(
                name=name,
                init=init,
                config=MCMCConfig(
                    beta_scale=config.beta_scale,
                    iterations=budget.iterations,
                    time_budget_s=budget.time_s,
                    no_improve_frac=budget.no_improve_frac,
                    seed=config.seed + 1000 * chain_idx,
                    checkpoint_every=budget.checkpoint_every,
                    adaptive=budget.adaptive,
                ),
            )
            for chain_idx, (name, init) in enumerate(candidates.items())
        ]

        t0 = time.perf_counter()
        results = run_chains(
            graph,
            topology,
            specs,
            profiler,
            workers=workers,
            cache_size=config.execution.cache_size,
            algorithm=config.algorithm,
            training=training,
            early_stop_cost=config.early_stop.cost_us,
            store_root=config.store.root,
            store_shared=config.store.shared,
            executor=config.execution.executor,
            cluster=config.execution.cluster,
            join_bind=config.execution.join_bind,
        )
        wall = time.perf_counter() - t0

        best_strategy: Strategy | None = None
        best_cost = float("inf")
        traces: dict = {}
        init_costs: dict[str, float] = {}
        simulations = 0
        route_counts: dict[str, int] = {}
        predicted_cone = actual_cone = cone_err = 0
        for r in results:
            if r.skipped:
                continue
            traces[r.name] = r.trace
            init_costs[r.name] = r.init_cost_us
            simulations += r.trace.simulations + 1  # +1: the chain's init simulation
            for route, n in r.trace.route_counts.items():
                route_counts[route] = route_counts.get(route, 0) + n
            predicted_cone += r.trace.predicted_cone_tasks
            actual_cone += r.trace.actual_cone_tasks
            cone_err += r.trace.cone_abs_error
            if r.best_cost_us < best_cost:
                best_cost = r.best_cost_us
                best_strategy = r.best_strategy

        # Aggregate per-chain accounting deltas: the authoritative totals,
        # since per-worker caches/stores are gone once the pool shuts down.
        cache_stats = reduce(CacheStats.merge, (r.cache for r in results), CacheStats())
        store_stats = reduce(StoreStats.merge, (r.store for r in results), StoreStats())

        if best_strategy is None:
            # Every chain was skipped -- e.g. an early-stop target of +inf
            # marks the fleet "done" before any chain starts.  This used to
            # die on a bare AssertionError; fail with an actionable error.
            raise SearchError(
                f"mcmc search produced no strategy: all {len(results)} chain(s) were "
                f"skipped by the early-stop target "
                f"(early_stop.cost_us={config.early_stop.cost_us!r}); "
                "raise or remove the target so at least one chain runs"
            )
        metrics = simulate_strategy(graph, topology, best_strategy, profiler, training=training)
        # Report the worker count actually observed (distinct processes that
        # ran chains), not the request: run_chains clamps to the chain count
        # and falls back to in-process execution on unpicklable inputs.
        observed_workers = len({r.worker_pid for r in results}) or 1
        return PlanResult(
            backend=self.name,
            best_strategy=best_strategy,
            best_cost_us=best_cost,
            metrics=metrics,
            wall_time_s=wall,
            simulations=simulations,
            cache_stats=cache_stats,
            store_stats=store_stats,
            extras={
                "traces": traces,
                "init_costs": init_costs,
                "chains": results,
                "workers": observed_workers,
                # Fleet-wide timeline-repair route telemetry (auto router).
                "route_counts": route_counts,
                "predicted_cone_tasks": predicted_cone,
                "actual_cone_tasks": actual_cone,
                "cone_abs_error": cone_err,
            },
        )


class ExhaustiveBackend:
    """Branch-and-bound global search for tiny spaces (Section 8.4)."""

    name = "exhaustive"

    def run(self, planner, config: SearchConfig) -> PlanResult:
        from repro.search.exhaustive import _exhaustive_impl

        opts = _backend_options(
            config, self.name, {"max_configs_per_op": None, "prune_every": 1}
        )
        store = None
        if config.store.root is not None:
            # Same context digest the mcmc backend uses -> complete-strategy
            # evaluations are shared between the two (see module docstring).
            try:
                context = planner.store_context(config)
                store = (
                    shared_store(config.store.root, context)
                    if config.store.shared
                    else StrategyStore(config.store.root, context)
                )
            except Exception as exc:  # a broken digest must never kill a search
                warnings.warn(
                    f"strategy store disabled (context digest failed: {exc!r})",
                    RuntimeWarning,
                    stacklevel=2,
                )
                store = None
        t0 = time.perf_counter()
        ex = _exhaustive_impl(
            planner.graph,
            planner.topology,
            planner.profiler,
            training=planner.training,
            max_configs_per_op=opts["max_configs_per_op"],
            prune_every=opts["prune_every"],
            store=store,
        )
        if store is not None:
            store.flush()
        wall = time.perf_counter() - t0
        metrics = simulate_strategy(
            planner.graph, planner.topology, ex.best_strategy, planner.profiler,
            training=planner.training,
        )
        return PlanResult(
            backend=self.name,
            best_strategy=ex.best_strategy,
            best_cost_us=ex.best_cost_us,
            metrics=metrics,
            wall_time_s=wall,
            simulations=ex.simulations,
            store_stats=replace(store.stats) if store is not None else StoreStats(),
            extras={
                "explored": ex.explored,
                "pruned": ex.pruned,
                "truncated": opts["max_configs_per_op"] is not None,
            },
        )


class OptCNNBackend:
    """OptCNN baseline: additive objective, coordinate descent / chain DP."""

    name = "optcnn"

    def run(self, planner, config: SearchConfig) -> PlanResult:
        from repro.baselines.optcnn import _optcnn_impl

        opts = _backend_options(config, self.name, {"max_sweeps": 8})
        t0 = time.perf_counter()
        oc = _optcnn_impl(
            planner.graph, planner.topology, planner.profiler, max_sweeps=opts["max_sweeps"]
        )
        # Clock stops before the substrate evaluation, like every other
        # backend, so the comparison table's search_s columns line up.
        wall = time.perf_counter() - t0
        # Evaluate on the common simulator substrate, as the paper evaluates
        # every system's strategy on the FlexFlow runtime (Section 8.2.3).
        metrics = simulate_strategy(
            planner.graph, planner.topology, oc.strategy, planner.profiler,
            training=planner.training,
        )
        return PlanResult(
            backend=self.name,
            best_strategy=oc.strategy,
            best_cost_us=metrics.makespan_us,
            metrics=metrics,
            wall_time_s=wall,
            simulations=1,
            extras={
                "predicted_cost_us": oc.predicted_cost_us,
                "sweeps": oc.sweeps,
                "candidates_per_group": oc.candidates_per_group,
            },
        )


class ReinforceBackend:
    """REINFORCE baseline: policy-gradient device placements."""

    name = "reinforce"

    def run(self, planner, config: SearchConfig) -> PlanResult:
        from repro.baselines.reinforce import _reinforce_impl

        opts = _backend_options(
            config, self.name, {"episodes": 300, "lr": 1.0, "entropy_bonus": 0.01}
        )
        t0 = time.perf_counter()
        rl = _reinforce_impl(
            planner.graph,
            planner.topology,
            planner.profiler,
            episodes=opts["episodes"],
            lr=opts["lr"],
            entropy_bonus=opts["entropy_bonus"],
            seed=config.seed,
            training=planner.training,
        )
        wall = time.perf_counter() - t0
        metrics = simulate_strategy(
            planner.graph, planner.topology, rl.strategy, planner.profiler,
            training=planner.training,
        )
        return PlanResult(
            backend=self.name,
            best_strategy=rl.strategy,
            best_cost_us=rl.best_cost_us,
            metrics=metrics,
            wall_time_s=wall,
            simulations=rl.episodes + 1,  # one simulation per episode + final eval
            extras={"history": rl.history, "episodes": rl.episodes},
        )


def register_builtins() -> None:
    """(Re-)register the four built-in backends; idempotent."""
    for backend in (McmcBackend(), ExhaustiveBackend(), OptCNNBackend(), ReinforceBackend()):
        register_backend(backend, overwrite=True)
