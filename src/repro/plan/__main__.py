"""Console checks for the planner registry.

``python -m repro.plan --list-backends`` prints every registered backend
and exits non-zero if any of the four built-ins is missing -- CI runs it
so a refactor that breaks backend registration fails loudly instead of
surfacing three layers up in a benchmark.
"""

from __future__ import annotations

import argparse
import sys

from repro.plan import available_backends

BUILTIN_BACKENDS = ("exhaustive", "mcmc", "optcnn", "reinforce")


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(
        prog="python -m repro.plan", description="Planner registry utilities."
    )
    ap.add_argument(
        "--list-backends",
        action="store_true",
        help="print registered search backends (exit 1 if a built-in is missing)",
    )
    args = ap.parse_args(argv)

    if args.list_backends:
        names = available_backends()
        for name in names:
            print(name)
        missing = sorted(set(BUILTIN_BACKENDS) - set(names))
        if missing:
            print(
                f"ERROR: built-in backend(s) not registered: {', '.join(missing)}",
                file=sys.stderr,
            )
            return 1
        return 0

    ap.print_help()
    return 2


if __name__ == "__main__":
    raise SystemExit(main())
