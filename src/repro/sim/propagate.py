"""Change-propagation simulation: the paper's delta algorithm, for real.

Algorithm 2 of the paper does not re-simulate a *time range* -- it
propagates *individual task updates*: after ``UpdateTaskGraph``, the
tasks whose inputs changed enter a priority queue, each dequeue
recomputes one task's ``(readyTime, startTime, endTime)`` against the
current state of its predecessors and its per-device execution chain
(the ``preTask``/``nextTask`` properties of Table 2), and -- crucially --
**propagation stops the moment a recomputed triple equals its old
value**, so parallel branches a change cannot reach are never touched.
The cut-time variant in :mod:`repro.sim.delta_sim` forfeits exactly this
property: it conservatively re-simulates every task ordered after the
earliest change.  This module restores it.

State and substrate
-------------------
The per-device execution chains already exist:
``Timeline.device_order[d]`` is the ``(readyTime, ckey, tid)``-sorted
execution order of device ``d`` -- FIFO-by-ready-time scheduling with
deterministic tie-breaking makes "sorted" and "execution order" the same
thing, so an entry's list neighbors *are* its ``preTask``/``nextTask``.
Keeping the chains on the timeline means the MCMC speculative path
(snapshot on propose, restore on revert) versions the propagation state
for free.  Static task properties and adjacency are read from the flat
:class:`~repro.sim.arrays.TaskArrays` substrate; the queue orders by
interned ckey *rank*, which preserves the reference tie-break order.

Convergence and exactness
-------------------------
A dequeued task whose data predecessors are all *settled* is recomputed
from their final values; one that still has an unsettled predecessor is
parked in that predecessor's waiter list and re-enqueued by its settle
(changed or not) -- the same dependency gating that makes the reference
sweeps process each task exactly once, applied only to the affected
region.  Whenever a settle actually changes a task's end time or chain
position, every downstream reader of that value (data successors; the
old and new ``nextTask``) is re-enqueued.  The process therefore only
terminates when every task satisfies the scheduling equations

.. code-block:: text

    ready[t] = max(end[p] for p in ins(t))
    start[t] = max(ready[t], end[preTask(t)])
    end[t]   = start[t] + exe[t]

with the chains sorted by ``(ready, ckey)`` -- the exact fixed point the
full algorithm computes, via the same float operations, so the result is
*bit-identical* to :func:`~repro.sim.full_sim.full_simulate` (enforced
at ``tol=0`` by the property suite in ``tests/sim``).  The one input the
gate does not cover is the chain predecessor (its identity depends on
the very ready times being repaired); a settle against a stale chain
neighbor is corrected by that neighbor's own settle re-opening it, which
keeps the device-local corrections bounded.

Cascade guard
-------------
Change propagation is opportunistic: a mutation near the timeline root
of a serial graph legitimately touches almost everything, and the
priority queue's constant factor then loses to the simple sweeps.  Two
guards bound the worst case to (a constant factor of) today's cost:
*pre-flight*, a changed-set lower bound (the splice's seed set) already
exceeding ``guard_frac`` of all tasks hands the still-pristine timeline
straight to the cut-time algorithm -- which by then costs the same and
carries a smaller constant; *mid-flight*, a queue that fails to drain
within a generous per-task pop budget (or any chain-bookkeeping drift)
abandons the partially-repaired timeline to an authoritative full
re-simulation.  Both trips are counted
(:attr:`~repro.sim.delta_sim.DeltaStats.guard_fallbacks` and
:attr:`~repro.sim.delta_sim.DeltaStats.fallbacks`); the
``bench_delta_propagation`` benchmark gates on a zero fallback rate for
the smoke model.

Vectorized engine and occupancy routing
---------------------------------------
Under the numpy kernels the drain itself is vectorized
(:func:`repro.sim.kernels.propagate_drain`): removed tasks are detached
from their chains in bulk, re-scans run per device as stable-argsorted
carry scans over whole chain segments (``_chain_sweep``), waiter lists
release in batches, and membership gates are ``bytearray`` lookups
instead of set hashing.  Its contract adds one degree of freedom: an
*occupancy pre-scan* -- run before anything is mutated -- counts how
many removed entries have a structurally identical replacement and, via
the same per-device ``dev_count`` + chain-bisect summaries the router
uses, how many chain entries sit past the cut.  Identity-shaped splices
(recipe replays) take a pure-rename fast path; small cones run the
vectorized drain; anything past ``PROPAGATE_CONE_LIMIT`` is *declined*
(the kernel returns ``None``) and this module runs the scalar heap
engine instead.  A decline is routing, not a fallback -- the timeline
is untouched and no ``DeltaStats`` counter moves -- and in practice the
``auto`` router has already sent such dense mutations to the cut-time
algorithm or the full sweep via :func:`preflight_route`, so the kernel
path is exercised on the workload it wins: measured on Inception/16,
~3.4x lower wall cost per identity resplice than this module's scalar
engine (gated >= 3x in ``bench_delta_propagation``, alongside bitwise
identity across every (algorithm, kernels) arm and >= 90% routing
accuracy).
"""

from __future__ import annotations

import heapq
from bisect import bisect_left
from collections import Counter

from repro.sim import kernels
from repro.sim.delta_sim import (
    _SATURATION_FRAC,
    DeltaStats,
    _fallback,
    delta_simulate,
)
from repro.sim.full_sim import Timeline
from repro.sim.taskgraph import TaskGraph

__all__ = ["DEFAULT_GUARD_FRAC", "predicted_cone", "preflight_route", "propagate_simulate"]

# Cascade-guard default: hand off once the changed set passes this
# fraction of all tasks.  Conservative enough that real proposals on
# paper-scale graphs never trip it (the benchmark asserts so), small
# enough that a degenerate cascade costs at most ~1.5x a plain delta.
DEFAULT_GUARD_FRAC = 0.5

# Queue-drain insurance: the fixed point is reached after each task
# settles a handful of times at most; a queue still busy after this many
# pops per task indicates bookkeeping drift, not a hard graph.
_POP_SAFETY_FACTOR = 16


def predicted_cone(tg: TaskGraph, tl: Timeline, removed: dict, dirty: set[int]) -> int:
    """Predicted repair-cone size of a just-spliced proposal, in tasks.

    Mirrors the cut-time algorithm's suffix *exactly*: the cut ``t_cut``
    is the same minimum (removed tasks' old ready times, plus a memoized
    ready lower bound through new predecessors), and the cone is counted
    from the per-device occupancy summaries --

    ``sum_d max(0, dev_count[d] - prefix_d)``

    where ``prefix_d`` is one bisect for the entries of device ``d``'s
    chain strictly before the cut (all survivors: removed entries sit at
    or after the cut by construction) and
    :attr:`~repro.sim.arrays.TaskArrays.dev_count` counts the device's
    live tasks, new ones included.  The difference is precisely the
    survivors past the cut plus the not-yet-scheduled new tasks -- the
    suffix ``delta_simulate`` would re-simulate -- without scanning a
    single chain.  Reads only the pre-repair timeline.
    """
    arr = tg.arrays
    exe = arr.exe
    all_ins = arr.ins
    tids = arr.tid
    slot_of = arr.slot_of
    ready, end = tl.ready, tl.end
    est_cache: dict[int, float] = {}

    def ready_lb(slot: int) -> float:
        cached = est_cache.get(slot)
        if cached is not None:
            return cached
        est_cache[slot] = 0.0  # break cycles defensively; DAG in practice
        best = 0.0
        for p in all_ins[slot]:
            pe = end.get(tids[p])
            if pe is None:
                pe = ready_lb(p) + exe[p]
            if pe > best:
                best = pe
        est_cache[slot] = best
        return best

    t_cut = float("inf")
    for tid in removed:
        r = ready.get(tid)
        if r is not None and r < t_cut:
            t_cut = r
    for tid in dirty:
        slot = slot_of.get(tid)
        if slot is None:
            continue
        est = ready_lb(slot)
        if est < t_cut:
            t_cut = est
    if t_cut == float("inf"):
        return 0
    order = tl.device_order
    cone = 0
    for d, n in arr.dev_count.items():
        if not n:
            continue
        lst = order.get(d)
        if lst:
            n -= bisect_left(lst, (t_cut,))
        if n > 0:
            cone += n
    return cone


def preflight_route(
    tg: TaskGraph,
    tl: Timeline,
    removed: dict,
    dirty: set[int],
    *,
    guard_frac: float = DEFAULT_GUARD_FRAC,
) -> tuple[str, int]:
    """Pick the repair algorithm for a just-spliced proposal.

    The cone estimator behind ``algorithm="auto"``: change propagation
    wins when the splice's timeline impact is *localized*, and loses --
    by an order of magnitude -- when a mutation actually moves the dense
    post-cut region, so the router predicts the cone *before* any
    repair work:

    * **Occupancy cone.**  :func:`predicted_cone` counts the live tasks
      at or after the cut across the device chains -- exactly the suffix
      the cut-time algorithm would re-simulate -- from the incrementally
      maintained per-device occupancy summaries.  A cone saturating the
      graph (>= the cut-time algorithm's own handoff fraction) routes
      *straight* to the vectorized full sweep, pre-empting the mid-repair
      saturation handoff (kernels enabled only: the scalar reference
      keeps the pure cut-time behavior).
    * **Seed fraction.**  A seed set already spanning ``guard_frac`` of
      the graph would trip propagation's pre-flight cascade guard anyway;
      route to the dense side without paying for a second check.
    * **Per-ckey structural identity.**  Each new task is compared
      against the removed population by ``(ckey, exe_time, device)``
      multiset -- collectively, new-vs-removed execution totals and seed
      fan-out per canonical key.  When the multisets match (identity
      re-splices; topology-preserving rebuilds), every replacement task
      schedules exactly where its predecessor did, the change cone
      collapses on contact, and propagation terminates after touching
      ~the seed set.  Any mismatch -- a different device placement, a
      changed execution time, new communication structure -- moves real
      end times, and the cone of a dense mutation approaches the whole
      post-cut suffix: the regime the cut-time sweep's lower constant
      factor is tuned for.

    Returns ``(route, predicted_cone)`` where ``route`` is
    ``"propagate"``, ``"delta"``, or ``"full"`` and ``predicted_cone``
    is the estimator's cone size in tasks (route telemetry compares it
    against the tasks the chosen algorithm actually repairs).  Only
    reads the pre-repair timeline (new tasks are exactly the dirty ids
    without a timeline entry), so it must run before the repair touches
    ``tl``.
    """
    total = len(tg.tasks)
    cone = predicted_cone(tg, tl, removed, dirty)

    def dense() -> tuple[str, int]:
        # A cone saturating the graph routes straight to the vectorized
        # full sweep, pre-empting the cut-time algorithm's mid-repair
        # saturation handoff; below the threshold the cut-time repair
        # keeps its constant-factor edge.
        if kernels.kernels_enabled() and cone >= _SATURATION_FRAC * total:
            return "full", cone
        return "delta", cone

    if len(dirty) + len(removed) >= max(1.0, guard_frac * total):
        return dense()
    arr = tg.arrays
    slot_of = arr.slot_of
    ckeys, exe, dev = arr.ckey, arr.exe, arr.dev
    ready = tl.ready
    new_sig: Counter = Counter()
    for tid in dirty:
        if tid in ready:
            continue  # survivor with changed predecessors, not a new task
        slot = slot_of.get(tid)
        if slot is not None:
            new_sig[(ckeys[slot], exe[slot], dev[slot])] += 1
    old_sig = Counter(
        (t.ckey, t.exe_time, t.device) for t in removed.values()
    )
    if new_sig == old_sig:
        # Contact-shaped: the change cone collapses on contact, whatever
        # the occupancy past the cut -- propagation touches ~the seeds.
        return "propagate", len(dirty)
    return dense()


def _locate(lst: list, r: float, ckey: tuple, tid: int) -> int:
    """Index of ``(r, ckey, tid)`` in a sorted device chain; -1 if absent.

    Chain entries are exactly these triples, so the lookup is one bisect
    on the full key -- O(log n) even when many entries share a ready
    time (the old implementation bisected on ``(r,)`` and scanned the
    equal-time run linearly, which dense levels made quadratic).
    """
    entry = (r, ckey, tid)
    idx = bisect_left(lst, entry)
    if idx < len(lst) and lst[idx] == entry:
        return idx
    return -1


def _give_up(tg: TaskGraph, tl: Timeline, stats: DeltaStats | None) -> Timeline:
    """Mid-flight abort: the timeline is partially repaired, so only a
    full re-simulation is authoritative."""
    if stats is not None:
        stats.tasks_resimulated += len(tg.tasks)
    return _fallback(tg, tl, stats)


def propagate_simulate(
    tg: TaskGraph,
    tl: Timeline,
    removed: dict,
    dirty: set[int],
    stats: DeltaStats | None = None,
    *,
    guard_frac: float = DEFAULT_GUARD_FRAC,
) -> Timeline:
    """Repair ``tl`` in place by propagating only actual changes.

    Same contract as :func:`~repro.sim.delta_sim.delta_simulate`
    (``removed``/``dirty`` from :meth:`TaskGraph.replace_config`), same
    resulting timeline -- bit-identical to both reference algorithms --
    but the work done is proportional to the tasks whose times actually
    move, not to the time range after the earliest change.
    """
    total = len(tg.tasks)
    if stats is not None:
        stats.invocations += 1
        stats.tasks_total += total

    # ---- cascade guard, pre-flight ---------------------------------------
    # The seed set is a lower bound on the changed set; when it is already
    # a large fraction of the graph, the cut-time sweep's lower constant
    # factor wins and the timeline is still pristine enough to hand over.
    if len(dirty) + len(removed) >= max(1.0, guard_frac * total):
        scratch = DeltaStats()
        delta_simulate(tg, tl, removed, dirty, scratch)
        if stats is not None:
            stats.guard_fallbacks += 1
            stats.tasks_resimulated += scratch.tasks_resimulated
            stats.fallbacks += scratch.fallbacks
            stats.saturation_handoffs += scratch.saturation_handoffs
        return tl

    # ---- vectorized engine ------------------------------------------------
    # The batched-front drain in repro.sim.kernels settles the same fixed
    # point through the same float operations (the A/B property suite in
    # tests/sim/test_propagate_kernels.py holds both engines to bitwise
    # agreement); the scalar queue below is the reference it is checked
    # against, selected with REPRO_SIM_KERNELS=python.
    if kernels.kernels_enabled():
        res = kernels.propagate_drain(tg, tl, removed, dirty)
    else:
        res = None
    if res is not None:  # None: occupancy pre-scan routed to the scalar engine
        rec, skips, ok = res
        if not ok:
            return _give_up(tg, tl, stats)
        if stats is not None:
            stats.propagated_tasks += rec
            stats.branch_skips += skips
            stats.tasks_resimulated += rec
        _tail_makespan(tl)
        return tl

    arr = tg.arrays
    exe, dev, rank, tids, ckeys = arr.exe, arr.dev, arr.rank, arr.tid, arr.ckey
    all_ins, all_outs = arr.ins, arr.outs
    slot_of = arr.slot_of
    ready, start, end = tl.ready, tl.start, tl.end
    order = tl.device_order

    heap: list[tuple[float, int, int]] = []  # (time key, ckey rank, slot)
    scheduled: set[int] = set()  # slots with a live heap entry
    unsettled: set[int] = set()  # slots whose timeline value is not final
    waiters: dict[int, list[int]] = {}  # pred slot -> slots parked on its settle
    detached: set[int] = set()  # slots whose (stale) chain entry was pulled

    def schedule(slot: int, key: float) -> None:
        # Clamp the key to the task's *current* chain-entry time: the task
        # must be visited no later than its old position, so its stale
        # entry is detached before any later finalize could read it as a
        # chain predecessor (the cut-time algorithm's prefix-safety
        # argument, applied per entry).
        unsettled.add(slot)
        if slot not in scheduled:
            if slot not in detached:
                old = ready.get(tids[slot])
                if old is not None and old < key:
                    key = old
            scheduled.add(slot)
            heapq.heappush(heap, (key, rank[slot], slot))

    def park(slot: int, gate: int) -> None:
        waiters.setdefault(gate, []).append(slot)

    def detach(slot: int, tid: int) -> bool:
        """Pull the task's old chain entry (keeping its timeline values)
        and seed the follower whose preTask just changed.  Idempotent;
        ``False`` signals chain/timeline drift."""
        if slot in detached:
            return True
        old = ready.get(tid)
        if old is None:
            detached.add(slot)  # new task: no entry to pull
            return True
        lst = order.get(dev[slot])
        idx = _locate(lst, old, ckeys[slot], tid) if lst is not None else -1
        if idx < 0:
            return False
        del lst[idx]
        detached.add(slot)
        if idx < len(lst):
            succ_slot = slot_of.get(lst[idx][2])
            if succ_slot is not None:
                schedule(succ_slot, lst[idx][0])
        return True

    # ---- detach removed tasks --------------------------------------------
    # Dropping a chain entry changes exactly one other task's preTask: the
    # entry that follows it.  Seed that survivor (removed followers are
    # filtered out -- their slots are already freed).
    for tid, t in removed.items():
        r = ready.pop(tid, None)
        start.pop(tid, None)
        end.pop(tid, None)
        if r is None:
            continue
        lst = order.get(t.device)
        idx = _locate(lst, r, t.ckey, tid) if lst is not None else -1
        if idx < 0:
            return _give_up(tg, tl, stats)  # chain/timeline drift
        del lst[idx]
        if idx < len(lst):
            succ_slot = slot_of.get(lst[idx][2])
            if succ_slot is not None:
                schedule(succ_slot, lst[idx][0])

    # ---- seed the dirty set ----------------------------------------------
    # Survivors enter at their current ready time.  New tasks enter once
    # every predecessor has an end time; one with a still-unended
    # (necessarily new, necessarily dirty) predecessor only becomes
    # *unsettled* here -- that predecessor's own first settle re-enqueues
    # it through the data-successor push below.
    for tid in dirty:
        slot = slot_of.get(tid)
        if slot is None:
            continue
        r0 = ready.get(tid)
        if r0 is None:
            r0 = 0.0
            for p in all_ins[slot]:
                pe = end.get(tids[p])
                if pe is None:
                    r0 = None
                    break
                if pe > r0:
                    r0 = pe
            if r0 is None:
                unsettled.add(slot)
                continue
        schedule(slot, r0)

    # ---- propagate --------------------------------------------------------
    # The gate discipline can transiently deadlock: parking follows the
    # *stale* device order (two entries whose ready times crossed may each
    # sort before the other's target position) and the implicit new-task
    # waits are invisible to it.  Rather than detecting cycles, the loop
    # runs in rounds: when the queue drains with tasks still unsettled, a
    # *force round* releases every parked task and lets it settle against
    # stale-but-readable inputs -- any wrong value written is repaired by
    # the writer of its input re-opening it, so the fixed point (and bit
    # identity) is unaffected.  A force round that settles nothing means a
    # genuine cycle: give up to the full algorithm.
    recomputed: set[int] = set()
    skips = 0
    pops = 0
    settles = 0
    pop_budget = _POP_SAFETY_FACTOR * total + 64
    force = False
    while True:
        while heap:
            k, _, slot = heapq.heappop(heap)
            scheduled.discard(slot)
            pops += 1
            if pops > pop_budget:
                return _give_up(tg, tl, stats)
            tid = tids[slot]

            # Data gate: settle only against settled predecessors; a
            # pending one parks this task in its waiter list, and every
            # settle (changed or skipped) releases its waiters.  A pred
            # whose value does not exist yet (a new task) must park even
            # in a force round.
            r = 0.0
            gate = -1
            for p in all_ins[slot]:
                pe = end.get(tids[p])
                if pe is None:
                    # No value to read at all (a new task): gates even in
                    # a force round.
                    gate = p
                    break
                if pe > r:
                    r = pe
                if gate < 0 and not force and p in unsettled:
                    gate = p
            if gate >= 0:
                # Parked for an unknown time: pull our stale entry first
                # so the wait cannot leak it into someone's preTask.
                if not detach(slot, tid):
                    return _give_up(tg, tl, stats)
                park(slot, gate)
                continue
            if r > k:
                # Inputs settled later than this entry's key; reprocess
                # in correct global time order (lazy re-push) -- after
                # pulling the entry if the task is provably moving later.
                old = ready.get(tid)
                if old is not None and slot not in detached and r > old:
                    if not detach(slot, tid):
                        return _give_up(tg, tl, stats)
                scheduled.add(slot)
                heapq.heappush(heap, (r, rank[slot], slot))
                continue

            d = dev[slot]
            lst = order.get(d)
            if lst is None:
                lst = order[d] = []
            old_r = ready.get(tid)
            old_s = start.get(tid)
            old_e = end.get(tid)
            entry = (r, ckeys[slot], tid)

            oidx = -1
            if old_r is not None and slot not in detached:
                oidx = _locate(lst, old_r, ckeys[slot], tid)
                if oidx < 0:
                    return _give_up(tg, tl, stats)

            # Chain gate: the would-be preTask at the target position.
            # An unsettled chain predecessor parks this task exactly like
            # an unsettled data predecessor -- settling against its stale
            # end would ripple a whole device chain of wrong values.
            # (Computed without mutating the chain, so parking leaves no
            # trace beyond the detach.)
            if not force:
                j = bisect_left(lst, entry)
                pre_idx = j - 1
                if pre_idx == oidx and pre_idx >= 0:
                    pre_idx -= 1  # skip our own old entry
                if pre_idx >= 0:
                    pre_slot = slot_of.get(lst[pre_idx][2])
                    if pre_slot is not None and pre_slot in unsettled:
                        if not detach(slot, tid):
                            return _give_up(tg, tl, stats)
                        park(slot, pre_slot)
                        continue

            # Repair the chain position; remember both affected nextTasks.
            # (A follower vacated by an earlier detach was seeded then.)
            old_succ_tid = None
            if oidx >= 0:
                if old_r == r:
                    idx = oidx
                    pos_changed = False
                else:
                    if oidx + 1 < len(lst):
                        old_succ_tid = lst[oidx + 1][2]
                    del lst[oidx]
                    idx = bisect_left(lst, entry)
                    lst.insert(idx, entry)
                    pos_changed = True
            else:
                idx = bisect_left(lst, entry)
                lst.insert(idx, entry)
                pos_changed = slot in detached or old_r is None
            detached.discard(slot)

            # startTime from the chain predecessor, endTime from exe.
            s = end[lst[idx - 1][2]] if idx > 0 else 0.0
            if r > s:
                s = r
            e = s + exe[slot]

            settles += 1
            unsettled.discard(slot)
            parked = waiters.pop(slot, None)
            if parked is not None:
                for w in parked:
                    schedule(w, e)

            if old_r == r and old_s == s and old_e == e:
                # Branch termination (Section 5.3): the triple is
                # unchanged, so no *value* anyone reads moved.  One
                # structural caveat: a task that was detached earlier and
                # just re-entered the chain may have displaced another
                # entry's preTask -- that follower must re-derive its
                # start even though our numbers are the same.
                if pos_changed and idx + 1 < len(lst):
                    succ_tid = lst[idx + 1][2]
                    if succ_tid != tid:
                        sslot = slot_of.get(succ_tid)
                        if sslot is not None:
                            schedule(sslot, ready.get(succ_tid, e))
                skips += 1
                continue

            ready[tid] = r
            start[tid] = s
            end[tid] = e
            recomputed.add(slot)

            if old_e != e:
                # Data successors read our end time through their ready
                # max.  Our new end is a lower bound on their new ready:
                # a valid (and tight) queue key.
                for nxt in all_outs[slot]:
                    schedule(nxt, e)
            if pos_changed or old_e != e:
                # Both chain followers -- at the vacated position and at
                # the new one -- now read a different preTask end.
                new_succ_tid = lst[idx + 1][2] if idx + 1 < len(lst) else None
                if old_succ_tid == new_succ_tid:
                    old_succ_tid = None
                for stid in (old_succ_tid, new_succ_tid):
                    if stid is not None and stid != tid:
                        sslot = slot_of.get(stid)
                        if sslot is not None:
                            schedule(sslot, ready.get(stid, e))

        if not unsettled:
            break
        if force and not settles:
            # A full force round settled nothing: a genuine dependency
            # cycle (construction bug), not transient staleness.
            return _give_up(tg, tl, stats)
        force = True
        settles = 0
        released = [w for parked in waiters.values() for w in parked]
        waiters.clear()
        for w in released:
            schedule(w, ready.get(tids[w], 0.0))
        # Unsettled tasks that are neither parked nor scheduled are new
        # tasks waiting on an unreadable predecessor's first settle; that
        # predecessor is in `released` (or downstream of it), so they
        # need no push here.

    if stats is not None:
        stats.propagated_tasks += len(recomputed)
        stats.branch_skips += skips
        stats.tasks_resimulated += len(recomputed)

    _tail_makespan(tl)
    return tl


def _tail_makespan(tl: Timeline) -> None:
    """Makespan from the chain tails: O(#devices), not O(#tasks)."""
    end = tl.end
    makespan = 0.0
    for lst in tl.device_order.values():
        if lst:
            e = end[lst[-1][2]]
            if e > makespan:
                makespan = e
    tl.makespan = makespan
