"""Flat struct-of-arrays view of the task graph (the simulators' substrate).

The task graph's source of truth is a ``dict[int, Task]`` of small
objects -- convenient for construction and splicing, but every simulator
sweep then pays a dict probe plus an attribute load per field access,
repeated for every task of every proposal.  :class:`TaskArrays` is the
cache-friendly mirror the hot loops read instead: one contiguous
``array`` per static property (``exe``/``dev``/``rank``), adjacency as
CSR-style per-slot row segments, and a dense *slot* index so per-task
state inside a sweep can live in plain lists.

Slots and free-list recycling
-----------------------------
Task *ids* grow monotonically across incremental reconfigurations (every
splice allocates fresh ids), so id-indexed arrays would grow without
bound over a search.  Each live task therefore occupies a *slot*; slots
freed by a splice go on a free list and are handed to the tasks the same
splice (or a later one) creates, so the arrays stay exactly as large as
the peak live-task count.

Adjacency
---------
``ins[slot]``/``outs[slot]`` hold the predecessor/successor *slots* of
the task in ``slot`` -- the row-segment layout of a CSR matrix, kept as
one mutable row per slot rather than a single flat buffer because
splices must edit individual rows in place (a packed index/offset pair
cannot absorb incremental inserts without a compaction sweep, which
would re-introduce the per-proposal O(n) cost this module removes).

Canonical-key ranks
-------------------
The simulators break ready-time ties by :attr:`~repro.sim.taskgraph.Task.ckey`,
a structural tuple.  Tuple comparisons in a priority queue are the
single hottest comparison site, so every distinct ckey is interned to an
integer *rank* with the defining property ``rank(a) < rank(b)`` iff
``a < b`` for all interned keys -- heaps ordered by ``(time, rank)``
therefore pop in exactly the ``(time, ckey)`` order of the reference
algorithms, keeping timelines bit-identical.  Interning a key that sorts
between existing ones shifts every key at or past the insertion point by
*exactly one* rank, so a renumber is two in-place ``+1`` bumps (one over
the rank table, one over the live ``rank`` column) rather than a tail
re-dict plus a whole-column rescan; :attr:`~TaskArrays.rank_renumbers`
counts them, and the ckey universe of a search problem is finite, so
renumbering frequency decays to zero as the table saturates (the
``bench_delta_propagation`` benchmark asserts the decay).
"""

from __future__ import annotations

from array import array
from bisect import bisect_left

try:  # numpy accelerates the renumber bumps; the loops below are the gate
    import numpy as _np
except ImportError:  # pragma: no cover - the toolchain ships numpy
    _np = None

__all__ = ["TaskArrays"]


class TaskArrays:
    """Struct-of-arrays mirror of a :class:`~repro.sim.taskgraph.TaskGraph`.

    Maintained *incrementally* by the task graph's construction and
    splice paths (:meth:`add`, :meth:`link`, :meth:`discard`); the
    simulators only ever read it.
    """

    __slots__ = (
        "exe",
        "dev",
        "rank",
        "tid",
        "kind",
        "nbytes",
        "ckey",
        "ins",
        "outs",
        "slot_of",
        "free",
        "dev_count",
        "rank_renumbers",
        "_sorted_ckeys",
        "_ckey_idx",
        "_idx_rank",
    )

    def __init__(self) -> None:
        self.exe = array("d")  # per-slot execution time (us)
        self.dev = array("q")  # per-slot device / connection id
        self.rank = array("q")  # per-slot interned ckey rank
        self.tid = array("q")  # per-slot task id, -1 when the slot is free
        self.kind = array("b")  # per-slot TaskKind value
        self.nbytes = array("d")  # per-slot transfer volume (COMM tasks)
        self.ckey: list[tuple | None] = []  # per-slot canonical key
        self.ins: list[list[int]] = []  # per-slot predecessor slots (CSR row)
        self.outs: list[list[int]] = []  # per-slot successor slots (CSR row)
        self.slot_of: dict[int, int] = {}  # live task id -> slot
        self.free: list[int] = []  # recycled slots (LIFO)
        # Per-device live-task occupancy (device/connection id -> count).
        # Kept incrementally by add/discard so the auto router can
        # predict a splice's repair cone -- live tasks at or after the
        # cut, per device chain -- without scanning the graph.
        self.dev_count: dict[int, int] = {}
        self.rank_renumbers = 0  # mid-table inserts; decays to 0 at saturation
        self._sorted_ckeys: list[tuple] = []  # all distinct ckeys, sorted
        # ckey -> a stable per-key index into _idx_rank (its insertion
        # number, never renumbered); _idx_rank[j] is key j's *current*
        # rank.  Keeping ranks in a flat column instead of dict values
        # makes a renumber one vectorizable += over integers.
        self._ckey_idx: dict[tuple, int] = {}
        self._idx_rank = array("q")

    # -- ckey interning ----------------------------------------------------
    def rank_of(self, ckey: tuple) -> int:
        """Current rank of an already-interned key."""
        return self._idx_rank[self._ckey_idx[ckey]]

    def key_index(self, ckey: tuple) -> int:
        """The *stable* intern index of an already-interned key.

        Unlike ranks, intern indices are insertion numbers: never
        renumbered and never reused (the table only grows), so they can
        be memoized across splices; ``_idx_rank[key_index(k)]`` is always
        the key's current rank.
        """
        return self._ckey_idx[ckey]

    def intern(self, ckey: tuple) -> int:
        """The rank of ``ckey``: order-preserving over all interned keys."""
        j = self._ckey_idx.get(ckey)
        if j is not None:
            return self._idx_rank[j]
        idx = bisect_left(self._sorted_ckeys, ckey)
        self._sorted_ckeys.insert(idx, ckey)
        self._ckey_idx[ckey] = len(self._idx_rank)
        self._idx_rank.append(idx)
        if idx == len(self._sorted_ckeys) - 1:
            # Appending at the tail keeps every existing rank valid.
            return idx
        # Mid-table insert: every existing key at or past idx -- and every
        # live slot holding one -- moves up by exactly one rank, so the
        # renumber is two in-place +1 bumps over integer columns (the new
        # key's own entry was appended above, after the bump cutoff is
        # computed, so it must be excluded by position, not value).
        self.rank_renumbers += 1
        if _np is not None:
            table = _np.frombuffer(self._idx_rank, dtype=_np.int64)[:-1]
            table[table >= idx] += 1
            if len(self.rank):
                col = _np.frombuffer(self.rank, dtype=_np.int64)
                col[col >= idx] += 1
        else:  # pragma: no cover - numpy-less fallback, same semantics
            table = self._idx_rank
            for j in range(len(table) - 1):
                if table[j] >= idx:
                    table[j] += 1
            col = self.rank
            for slot in range(len(col)):
                if col[slot] >= idx:
                    col[slot] += 1
        return idx

    # -- slot lifecycle ----------------------------------------------------
    def add(
        self,
        tid: int,
        exe_time: float,
        device: int,
        ckey: tuple,
        kind: int = 0,
        nbytes: float = 0.0,
    ) -> int:
        """Assign a slot to a new live task; returns the slot."""
        rank = self.intern(ckey)
        dc = self.dev_count
        dc[device] = dc.get(device, 0) + 1
        if self.free:
            slot = self.free.pop()
            self.exe[slot] = exe_time
            self.dev[slot] = device
            self.rank[slot] = rank
            self.tid[slot] = tid
            self.kind[slot] = kind
            self.nbytes[slot] = nbytes
            self.ckey[slot] = ckey
            # Rows were cleared by discard(); reuse the list objects.
        else:
            slot = len(self.tid)
            self.exe.append(exe_time)
            self.dev.append(device)
            self.rank.append(rank)
            self.tid.append(tid)
            self.kind.append(kind)
            self.nbytes.append(nbytes)
            self.ckey.append(ckey)
            self.ins.append([])
            self.outs.append([])
        self.slot_of[tid] = slot
        return slot

    def link(self, src_tid: int, dst_tid: int) -> None:
        """Record the dependency edge ``src -> dst`` (both must be live)."""
        a = self.slot_of[src_tid]
        b = self.slot_of[dst_tid]
        self.outs[a].append(b)
        self.ins[b].append(a)

    def discard(self, tid: int) -> None:
        """Free a task's slot, scrubbing it from living neighbors' rows.

        Safe to call in any order over a batch of removals: rows of
        already-freed neighbors are skipped (their slots read ``tid=-1``).
        Slots freed by a batch are only reused by :meth:`add` calls made
        *after* the batch, which is how both splice paths sequence their
        mutations.
        """
        slot = self.slot_of.pop(tid)
        self.dev_count[self.dev[slot]] -= 1
        live = self.tid
        for p in self.ins[slot]:
            if live[p] != -1:
                self.outs[p].remove(slot)
        for s in self.outs[slot]:
            if live[s] != -1:
                self.ins[s].remove(slot)
        self.ins[slot].clear()
        self.outs[slot].clear()
        live[slot] = -1
        self.ckey[slot] = None
        self.free.append(slot)

    def discard_batch(self, tids) -> None:
        """Free a batch of slots at once (same contract as :meth:`discard`).

        Marking the whole batch dead *before* scrubbing means intra-batch
        edges -- the majority in a group splice, whose members are wired
        mostly to each other -- skip the ``list.remove`` scan entirely
        instead of each member scrubbing rows the batch is about to
        clear anyway.  Slot free order matches sequential discards.
        """
        live = self.tid
        pop = self.slot_of.pop
        ckeys = self.ckey
        slots = [pop(t) for t in tids]
        dc = self.dev_count
        devs = self.dev
        for s in slots:
            live[s] = -1
            ckeys[s] = None
            dc[devs[s]] -= 1
        ins, outs = self.ins, self.outs
        for s in slots:
            row = ins[s]
            for p in row:
                if live[p] != -1:
                    outs[p].remove(s)
            row.clear()
            row = outs[s]
            for q in row:
                if live[q] != -1:
                    ins[q].remove(s)
            row.clear()
        self.free.extend(slots)

    # -- introspection -----------------------------------------------------
    @property
    def num_live(self) -> int:
        return len(self.slot_of)

    @property
    def num_slots(self) -> int:
        return len(self.tid)

    def check_consistent(self, tasks: dict) -> None:
        """Assert this mirror exactly matches a ``{tid: Task}`` dict.

        Test-suite helper: raises ``AssertionError`` on any divergence
        (membership, static columns, adjacency as sets, rank ordering).
        """
        assert set(self.slot_of) == set(tasks), (
            f"live-id mismatch: arrays={sorted(self.slot_of)} tasks={sorted(tasks)}"
        )
        for tid, t in tasks.items():
            slot = self.slot_of[tid]
            assert self.tid[slot] == tid
            assert self.exe[slot] == t.exe_time, f"exe mismatch for task {tid}"
            assert self.dev[slot] == t.device, f"device mismatch for task {tid}"
            assert self.kind[slot] == int(t.kind), f"kind mismatch for task {tid}"
            assert self.nbytes[slot] == t.nbytes, f"nbytes mismatch for task {tid}"
            assert self.ckey[slot] == t.ckey, f"ckey mismatch for task {tid}"
            assert self.rank[slot] == self.rank_of(t.ckey)
            got_ins = sorted(self.tid[p] for p in self.ins[slot])
            got_outs = sorted(self.tid[s] for s in self.outs[slot])
            assert got_ins == sorted(t.ins), f"ins mismatch for task {tid}"
            assert got_outs == sorted(t.outs), f"outs mismatch for task {tid}"
        want: dict[int, int] = {}
        for t in tasks.values():
            want[t.device] = want.get(t.device, 0) + 1
        got = {d: n for d, n in self.dev_count.items() if n}
        assert got == want, f"dev_count drift: {got} != {want}"
        # Rank table is a bijection consistent with ckey ordering.
        for a, b in zip(self._sorted_ckeys, self._sorted_ckeys[1:]):
            assert a < b and self.rank_of(a) < self.rank_of(b)
        for slot in self.free:
            assert self.tid[slot] == -1
            assert not self.ins[slot] and not self.outs[slot]
