"""Delta simulation algorithm (Algorithm 2 of the paper).

The MCMC optimizer changes one weight-group's configuration per proposal,
so most of the previous execution timeline remains valid.  Instead of
re-simulating from scratch, this module replays the unchanged *prefix* of
the previous :class:`~repro.sim.full_sim.Timeline` and re-simulates only
the suffix:

1. :meth:`TaskGraph.replace_config` has already spliced the task graph
   and reported the removed task ids and the "dirty" seed set (new tasks
   plus survivors whose predecessor sets changed);
2. the **cut time** ``t_cut`` is the earliest instant anything can
   change: the minimum over removed tasks' old ready times and a lower
   bound on every seed's new ready time (a memoized recursion through
   predecessors that are themselves new);
3. every task whose old ready time is before ``t_cut`` is provably
   unaffected -- devices execute FIFO by ready time, so a task ordered
   before the cut depends only on tasks ordered before the cut -- and its
   times are kept verbatim;
4. the remaining tasks are re-simulated with exactly the full
   algorithm's priority-queue sweep, seeded with the per-device end
   times of the preserved prefixes.

Because the suffix is computed by the same algorithm under identical
boundary conditions, "the full and delta simulation algorithms always
produce the same timeline" (Section 5.3) holds by construction; the
property is additionally enforced by hypothesis tests in ``tests/sim``.

**Fidelity note (see EXPERIMENTS.md):** the paper's delta implementation
propagates incremental updates and can skip unaffected parallel branches
*after* the first change, reporting 2.2-6.9x end-to-end search speedups.
A change-propagation variant proved pathologically cascade-prone under
CPython's interpreter costs, so this implementation trades some of that
upside for a single-pass algorithm with a correctness proof; measured
speedups are smaller (roughly 1.2-2.5x, growing when mutations land late
in the timeline) but the qualitative Table 4 result -- delta faster,
advantage growing with device count -- is preserved.  A defensive check
falls back to full simulation if a suffix task ever becomes ready before
the cut (never observed; counted in :attr:`DeltaStats.fallbacks`).
"""

from __future__ import annotations

import heapq
from bisect import bisect_left
from dataclasses import dataclass

from repro.sim.full_sim import Timeline, full_simulate
from repro.sim.taskgraph import TaskGraph

__all__ = ["DeltaStats", "delta_simulate"]


@dataclass
class DeltaStats:
    """Work accounting for the delta algorithm (drives Table 4's speedups)."""

    invocations: int = 0
    fallbacks: int = 0
    tasks_resimulated: int = 0
    tasks_total: int = 0

    @property
    def resim_fraction(self) -> float:
        return self.tasks_resimulated / self.tasks_total if self.tasks_total else 0.0


def _fallback(tg: TaskGraph, tl: Timeline, stats: DeltaStats | None) -> Timeline:
    if stats is not None:
        stats.fallbacks += 1
    fresh = full_simulate(tg)
    tl.ready, tl.start, tl.end = fresh.ready, fresh.start, fresh.end
    tl.device_order = fresh.device_order
    tl.makespan = fresh.makespan
    return tl


def delta_simulate(
    tg: TaskGraph,
    tl: Timeline,
    removed: dict[int, int],
    dirty: set[int],
    stats: DeltaStats | None = None,
) -> Timeline:
    """Repair ``tl`` in place after a task-graph splice; returns ``tl``.

    ``removed`` maps removed task id -> device id; ``dirty`` is the seed
    set -- both come from :meth:`TaskGraph.replace_config`.
    """
    if stats is not None:
        stats.invocations += 1
        stats.tasks_total += len(tg.tasks)
    tasks = tg.tasks
    ready, start, end = tl.ready, tl.start, tl.end
    order = tl.device_order

    # ---- cut time --------------------------------------------------------
    # A lower bound on each seed's new ready time: the max over its
    # predecessors of either their (still valid) old end time, or -- for
    # predecessors that are themselves new -- a recursive lower bound plus
    # their execution time.
    est_cache: dict[int, float] = {}

    def ready_lb(tid: int) -> float:
        cached = est_cache.get(tid)
        if cached is not None:
            return cached
        est_cache[tid] = 0.0  # break cycles defensively; DAG in practice
        best = 0.0
        for p in tasks[tid].ins:
            pe = end.get(p)
            if pe is None:
                pe = ready_lb(p) + tasks[p].exe_time
            if pe > best:
                best = pe
        est_cache[tid] = best
        return best

    t_cut = float("inf")
    for tid in removed:
        r = ready.get(tid)
        if r is not None and r < t_cut:
            t_cut = r
    for tid in dirty:
        if tid not in tasks:
            continue
        est = ready_lb(tid)
        if est < t_cut:
            t_cut = est

    # Drop removed tasks' timeline entries (their device-order entries all
    # sit at or after the cut and disappear with the truncation below).
    for tid in removed:
        ready.pop(tid, None)
        start.pop(tid, None)
        end.pop(tid, None)

    if t_cut == float("inf"):
        # Nothing structural changed.
        tl.recompute_makespan()
        return tl

    # ---- partition into fixed prefix and suffix ---------------------------
    # Suffix members come from two places, avoiding a full-graph scan:
    # survivors past the cut are exactly the truncated device-order tails,
    # and new tasks (no timeline entry yet) are all in the dirty seed set.
    suffix: list[int] = []
    dev_last_end: dict[int, float] = {}
    makespan = 0.0
    for dev, lst in order.items():
        cut_idx = bisect_left(lst, (t_cut,))
        for entry in lst[cut_idx:]:
            tid = entry[-1]
            if tid in tasks:  # truncated entries of *removed* tasks just vanish
                suffix.append(tid)
        del lst[cut_idx:]
        if lst:
            last = end[lst[-1][-1]]
            dev_last_end[dev] = last
            if last > makespan:
                makespan = last
    for tid in dirty:
        if tid in tasks and tid not in ready:
            suffix.append(tid)
    if stats is not None:
        stats.tasks_resimulated += len(suffix)
    suffix_set = set(suffix)

    # ---- Algorithm 1 over the suffix ----------------------------------------
    heap: list[tuple[float, tuple[int, ...], int]] = []
    indeg: dict[int, int] = {}
    sready: dict[int, float] = {}
    for tid in suffix:
        t = tasks[tid]
        n = 0
        est = 0.0
        for p in t.ins:
            if p in suffix_set:
                n += 1
            else:
                pe = end[p]  # fixed predecessor: final value
                if pe > est:
                    est = pe
        indeg[tid] = n
        sready[tid] = est
        if n == 0:
            heap.append((est, t.ckey, tid))
    heapq.heapify(heap)

    scheduled = 0
    while heap:
        r, ck, tid = heapq.heappop(heap)
        if r < t_cut:
            # Defensive: contradicts the prefix-safety invariant.
            return _fallback(tg, tl, stats)
        t = tasks[tid]
        s = max(r, dev_last_end.get(t.device, 0.0))
        e = s + t.exe_time
        ready[tid] = r
        start[tid] = s
        end[tid] = e
        dev_last_end[t.device] = e
        if e > makespan:
            makespan = e
        order.setdefault(t.device, []).append((r, ck, tid))
        scheduled += 1
        for nxt in t.outs:
            if nxt not in suffix_set:
                continue
            if e > sready[nxt]:
                sready[nxt] = e
            indeg[nxt] -= 1
            if indeg[nxt] == 0:
                heapq.heappush(heap, (sready[nxt], tasks[nxt].ckey, nxt))

    if scheduled != len(suffix):
        # A dependency cycle or bookkeeping drift: re-run authoritatively.
        return _fallback(tg, tl, stats)

    tl.makespan = makespan
    return tl
