"""Delta simulation algorithm (Algorithm 2 of the paper), cut-time variant.

The MCMC optimizer changes one weight-group's configuration per proposal,
so most of the previous execution timeline remains valid.  Instead of
re-simulating from scratch, this module replays the unchanged *prefix* of
the previous :class:`~repro.sim.full_sim.Timeline` and re-simulates only
the suffix:

1. :meth:`TaskGraph.replace_config` has already spliced the task graph
   and reported the removed task ids and the "dirty" seed set (new tasks
   plus survivors whose predecessor sets changed);
2. the **cut time** ``t_cut`` is the earliest instant anything can
   change: the minimum over removed tasks' old ready times and a lower
   bound on every seed's new ready time (a memoized recursion through
   predecessors that are themselves new);
3. every task whose old ready time is before ``t_cut`` is provably
   unaffected -- devices execute FIFO by ready time, so a task ordered
   before the cut depends only on tasks ordered before the cut -- and its
   times are kept verbatim;
4. the remaining tasks are re-simulated with exactly the full
   algorithm's priority-queue sweep, seeded with the per-device end
   times of the preserved prefixes.

Because the suffix is computed by the same algorithm under identical
boundary conditions, "the full and delta simulation algorithms always
produce the same timeline" (Section 5.3) holds by construction; the
property is additionally enforced by hypothesis tests in ``tests/sim``.

**Fidelity note:** this cut-time variant re-simulates *every* task
ordered at or after the earliest change, including parallel branches the
change cannot reach -- a conservative over-approximation that is simple
to prove correct but forfeits the skip-unaffected-branches property the
paper's delta implementation exploits for its 2.2-6.9x end-to-end search
speedups.  :mod:`repro.sim.propagate` (``algorithm="propagate"``) now
implements that property: a true change-propagation engine that walks
only *actually-changed* tasks, terminates each branch the moment a
recomputed ``(ready, start, end)`` triple equals its old value, and
falls back to this algorithm (then to full simulation) behind a cascade
guard.  Measured on Inception/16 devices
(``benchmarks/bench_delta_propagation.py``): splices whose timeline
impact is localized (identity re-splices; absorbed changes) repair
~100x fewer tasks -- the vectorized propagate engine replays them at
~3.4x lower wall cost than its own scalar heap, ~20x below this
variant -- while dense random mutations, whose true change cone
approaches the suffix, stay at task parity with a slightly higher
constant factor.  The default ``algorithm="auto"`` router therefore
sizes the cone *before* repairing: localized splices go to
``propagate``, dense mutations land here while the predicted occupancy
cone (per-device ``TaskArrays.dev_count`` summaries + chain bisects)
stays under :data:`_SATURATION_FRAC` of the graph, and past that the
router skips straight to the vectorized full sweep.  On the bench's
mutation workload that rule routes 100% of proposals within 10% of the
a-posteriori cheapest algorithm and leaves
:attr:`DeltaStats.saturation_handoffs` -- this module's own mid-repair
re-route when a suffix it accepted saturates anyway -- at zero.  This
variant is also the guard's safety net and the reference the property
suite checks the incremental algorithms against (all four algorithms
produce bit-identical timelines, ``tol=0``).  A defensive check falls
back to full simulation if a suffix task ever becomes ready before the
cut (never observed; counted in :attr:`DeltaStats.fallbacks`).

Like the full algorithm, the suffix sweep runs on the flat
:class:`~repro.sim.arrays.TaskArrays` substrate -- static columns and
adjacency rows indexed by slot, heap ordered by interned ckey rank --
instead of probing the ``dict[int, Task]`` per field access.
"""

from __future__ import annotations

import heapq
from bisect import bisect_left
from dataclasses import dataclass, field

from repro.sim import kernels
from repro.sim.full_sim import Timeline, full_simulate
from repro.sim.taskgraph import TaskGraph

__all__ = ["DeltaStats", "delta_simulate"]

#: Suffix fraction at which the cut-time repair hands off to the full
#: kernel sweep (see the saturation handoff in :func:`delta_simulate`).
_SATURATION_FRAC = 0.5


@dataclass
class DeltaStats:
    """Work accounting for the incremental algorithms (drives Table 4).

    Shared by the cut-time delta algorithm and the change-propagation
    engine (:mod:`repro.sim.propagate`): both count every repaired task
    in ``tasks_resimulated``, so ``resim_fraction`` compares the two
    directly.  ``propagated_tasks``/``branch_skips`` are only written by
    the propagation engine; ``guard_fallbacks`` counts its cascade-guard
    handoffs to the cut-time algorithm (``fallbacks`` counts authoritative
    full re-simulations, from either algorithm's defensive paths).
    """

    invocations: int = 0
    fallbacks: int = 0
    tasks_resimulated: int = 0
    tasks_total: int = 0
    propagated_tasks: int = 0  # tasks whose times a propagation pass recomputed
    branch_skips: int = 0  # propagation pops whose triple was unchanged
    guard_fallbacks: int = 0  # cascade-guard handoffs to the cut-time algorithm
    auto_propagate: int = 0  # auto-router proposals sent to change propagation
    auto_delta: int = 0  # auto-router proposals sent to the cut-time algorithm
    auto_noop: int = 0  # auto-router proposals short-circuited (identity config)
    auto_full: int = 0  # auto-router proposals sent straight to the full sweep
    saturation_handoffs: int = 0  # saturated suffixes handed to the full kernel
    # Route telemetry (auto router only): per-route proposal counts --
    # including the pre-splice "noop" short circuit -- plus the occupancy
    # estimator's accounting: the summed predicted repair-cone sizes, the
    # tasks the routed algorithms actually repaired, and the accumulated
    # absolute prediction error.  Flows through the bench grid and the
    # repro.exp trial rows.
    route_counts: dict = field(default_factory=dict)
    predicted_cone_tasks: int = 0
    actual_cone_tasks: int = 0
    cone_abs_error: int = 0

    @property
    def resim_fraction(self) -> float:
        return self.tasks_resimulated / self.tasks_total if self.tasks_total else 0.0

    @property
    def fallback_rate(self) -> float:
        """Fraction of invocations that abandoned the incremental path."""
        if not self.invocations:
            return 0.0
        return (self.fallbacks + self.guard_fallbacks) / self.invocations


def _fallback(tg: TaskGraph, tl: Timeline, stats: DeltaStats | None) -> Timeline:
    if stats is not None:
        stats.fallbacks += 1
    fresh = full_simulate(tg)
    tl.ready, tl.start, tl.end = fresh.ready, fresh.start, fresh.end
    tl.device_order = fresh.device_order
    tl.makespan = fresh.makespan
    return tl


def delta_simulate(
    tg: TaskGraph,
    tl: Timeline,
    removed: dict,
    dirty: set[int],
    stats: DeltaStats | None = None,
) -> Timeline:
    """Repair ``tl`` in place after a task-graph splice; returns ``tl``.

    ``removed`` maps removed task id -> the removed
    :class:`~repro.sim.taskgraph.Task`; ``dirty`` is the seed set --
    both come from :meth:`TaskGraph.replace_config`.
    """
    if stats is not None:
        stats.invocations += 1
        stats.tasks_total += len(tg.tasks)
    arr = tg.arrays
    exe, dev, rank, tids, ckeys = arr.exe, arr.dev, arr.rank, arr.tid, arr.ckey
    all_ins, all_outs = arr.ins, arr.outs
    slot_of = arr.slot_of
    ready, start, end = tl.ready, tl.start, tl.end
    order = tl.device_order

    # ---- cut time --------------------------------------------------------
    # A lower bound on each seed's new ready time: the max over its
    # predecessors of either their (still valid) old end time, or -- for
    # predecessors that are themselves new -- a recursive lower bound plus
    # their execution time.
    est_cache: dict[int, float] = {}

    def ready_lb(slot: int) -> float:
        cached = est_cache.get(slot)
        if cached is not None:
            return cached
        est_cache[slot] = 0.0  # break cycles defensively; DAG in practice
        best = 0.0
        for p in all_ins[slot]:
            pe = end.get(tids[p])
            if pe is None:
                pe = ready_lb(p) + exe[p]
            if pe > best:
                best = pe
        est_cache[slot] = best
        return best

    t_cut = float("inf")
    for tid in removed:
        r = ready.get(tid)
        if r is not None and r < t_cut:
            t_cut = r
    for tid in dirty:
        slot = slot_of.get(tid)
        if slot is None:
            continue
        est = ready_lb(slot)
        if est < t_cut:
            t_cut = est

    # Drop removed tasks' timeline entries (their device-order entries all
    # sit at or after the cut and disappear with the truncation below).
    for tid in removed:
        ready.pop(tid, None)
        start.pop(tid, None)
        end.pop(tid, None)

    if t_cut == float("inf"):
        # Nothing structural changed: no removed task had a timeline entry
        # and no seed survived, so every end time -- and with them the
        # running makespan the timeline already holds -- is untouched.
        # (This used to rescan all end times per no-op proposal.)
        return tl

    # ---- partition into fixed prefix and suffix ---------------------------
    # Suffix members come from two places, avoiding a full-graph scan:
    # survivors past the cut are exactly the truncated device-order tails,
    # and new tasks (no timeline entry yet) are all in the dirty seed set.
    suffix: list[int] = []
    dev_last_end: dict[int, float] = {}
    makespan = 0.0
    for d, lst in order.items():
        cut_idx = bisect_left(lst, (t_cut,))
        for entry in lst[cut_idx:]:
            tid = entry[-1]
            if tid in slot_of:  # truncated entries of *removed* tasks just vanish
                suffix.append(tid)
        del lst[cut_idx:]
        if lst:
            last = end[lst[-1][-1]]
            dev_last_end[d] = last
            if last > makespan:
                makespan = last
    for tid in dirty:
        if tid in slot_of and tid not in ready:
            suffix.append(tid)
    if stats is not None:
        stats.tasks_resimulated += len(suffix)
    suffix_slots = {slot_of[tid] for tid in suffix}

    # ---- saturation handoff ----------------------------------------------
    # When the suffix covers most of the graph (dense mutations routinely
    # re-simulate ~80% of tasks), the cut-time machinery buys nothing over
    # Algorithm 1 while still paying for truncation and boundary seeding;
    # the vectorized full sweep is strictly cheaper.  Hand off at the
    # t_cut -> 0 limit of this algorithm -- the result is bit-identical by
    # the same argument as the defensive fallback, so this is a pure
    # routing decision.  Only taken on the kernel path: the scalar
    # reference keeps the pure cut-time behavior the property suite and
    # the paper's Table 4 accounting describe.
    if (
        kernels.kernels_enabled()
        and len(suffix_slots) >= _SATURATION_FRAC * len(tg.tasks)
    ):
        if stats is not None:
            stats.saturation_handoffs += 1
            stats.tasks_resimulated += len(tg.tasks) - len(suffix)
        fresh = full_simulate(tg)
        tl.ready, tl.start, tl.end = fresh.ready, fresh.start, fresh.end
        tl.device_order = fresh.device_order
        tl.makespan = fresh.makespan
        return tl

    # ---- Algorithm 1 over the suffix ----------------------------------------
    if kernels.kernels_enabled():
        # Bit-identical level-batched drain (repro.sim.kernels); the
        # scalar sweep below is the REPRO_SIM_KERNELS=python reference.
        scheduled, mk, ok = kernels.suffix_drain(
            tg, suffix_slots, t_cut, ready, start, end, order, dev_last_end, makespan
        )
        if not ok or scheduled != len(suffix_slots):
            # Pre-cut pop (prefix-safety violation), a dependency cycle,
            # or bookkeeping drift: re-run authoritatively.
            return _fallback(tg, tl, stats)
        tl.makespan = mk
        return tl

    heap: list[tuple[float, int, int]] = []
    indeg: dict[int, int] = {}
    sready: dict[int, float] = {}
    for slot in suffix_slots:
        n = 0
        est = 0.0
        for p in all_ins[slot]:
            if p in suffix_slots:
                n += 1
            else:
                pe = end[tids[p]]  # fixed predecessor: final value
                if pe > est:
                    est = pe
        indeg[slot] = n
        sready[slot] = est
        if n == 0:
            heap.append((est, rank[slot], slot))
    heapq.heapify(heap)

    scheduled = 0
    while heap:
        r, _, slot = heapq.heappop(heap)
        if r < t_cut:
            # Defensive: contradicts the prefix-safety invariant.
            return _fallback(tg, tl, stats)
        tid = tids[slot]
        d = dev[slot]
        s = dev_last_end.get(d, 0.0)
        if r > s:
            s = r
        e = s + exe[slot]
        ready[tid] = r
        start[tid] = s
        end[tid] = e
        dev_last_end[d] = e
        if e > makespan:
            makespan = e
        order.setdefault(d, []).append((r, ckeys[slot], tid))
        scheduled += 1
        for nxt in all_outs[slot]:
            if nxt not in suffix_slots:
                continue
            if e > sready[nxt]:
                sready[nxt] = e
            indeg[nxt] -= 1
            if indeg[nxt] == 0:
                heapq.heappush(heap, (sready[nxt], rank[nxt], nxt))

    if scheduled != len(suffix_slots):
        # A dependency cycle or bookkeeping drift: re-run authoritatively.
        return _fallback(tg, tl, stats)

    tl.makespan = makespan
    return tl
