"""Task graph construction (Section 5.1 of the paper).

Given an operator graph, a device topology, and a parallelization
strategy, build the graph of *tasks*:

1. every operation contributes one **normal task** per configuration
   slot (and a mirrored **backward task** in training mode);
2. for every tensor edge, producer/consumer task pairs with shared data
   either get a direct dependency (same device) or a **communication
   task** placed on the connection between their devices;
3. every parameter shard replicated across devices gets a **ring
   all-reduce** (modelled as one communication task per ring hop carrying
   the standard ``2(k-1)/k`` traffic) followed by per-replica **update
   tasks** -- this is what makes parameter-synchronization cost visible
   to the search, reproducing Figure 8(b)'s transfer reductions.

The task graph supports *incremental reconfiguration*
(:meth:`TaskGraph.replace_config`): changing one operation's
configuration splices out only that op's tasks, its adjacent
communication tasks, and its parameter-sync tasks, which is the
``UpdateTaskGraph`` step of the paper's delta simulation algorithm
(Algorithm 2).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.ir.graph import Edge, OperatorGraph
from repro.machine.topology import Connection, DeviceTopology
from repro.profiler.profiler import OpProfiler
from repro.sim.arrays import TaskArrays
from repro.soap.partition import overlapping_tasks
from repro.soap.strategy import Strategy

__all__ = ["TaskKind", "Task", "TaskGraph", "SpliceRecord"]


class TaskKind(enum.IntEnum):
    NORMAL = 0  # forward or backward compute task
    COMM = 1  # data transfer on a connection
    UPDATE = 2  # SGD parameter update


@dataclass(slots=True)
class Task:
    """One node of the task graph (Table 2's static properties).

    ``device`` is a compute-device id for NORMAL/UPDATE tasks and a
    connection id for COMM tasks; both live in one id space so the
    simulator treats them uniformly (Section 5.1: "we treat each hardware
    connection between devices as a communication device").

    ``ckey`` is a *canonical sort key*: a tuple derived from the task's
    structural identity (which op/edge/sync-group slot it fills), not from
    creation order.  The simulators break ready-time ties by ``ckey``, so
    the timeline of a strategy is identical no matter through which
    sequence of incremental reconfigurations the task graph was reached --
    the invariant that makes strategy-level simulation caching sound (see
    :mod:`repro.search.cache`).
    """

    tid: int
    kind: TaskKind
    device: int
    exe_time: float
    ckey: tuple[int, ...] = ()
    op_id: int = -1
    index: int = -1
    backward: bool = False
    nbytes: float = 0.0
    conn: Connection | None = None
    ins: list[int] = field(default_factory=list)
    outs: list[int] = field(default_factory=list)


@dataclass
class SpliceRecord:
    """Everything needed to undo one :meth:`TaskGraph.replace_config`.

    The removed :class:`Task` objects are kept alive with their adjacency
    lists intact, so an undo re-inserts them and re-attaches only the
    links to *surviving* neighbors -- no profiler calls, no task
    rebuilding, and (together with a timeline snapshot, see
    :meth:`~repro.sim.simulator.Simulator.propose`) no re-simulation.
    """

    op_id: int
    members: tuple[int, ...]
    old_cfg: object  # the members' shared ParallelConfig before the splice
    removed_tasks: list[Task]
    added_lo: int  # added task ids are the contiguous range [added_lo, added_hi)
    added_hi: int
    fwd_lists: dict[int, list[int]]
    bwd_lists: dict[int, list[int]]
    sync_key: str
    sync_list: list[int]
    edge_lists: dict[tuple[int, int, int], list[int]]


class TaskGraph:
    """Tasks + dependencies for (operator graph, topology, strategy)."""

    def __init__(
        self,
        graph: OperatorGraph,
        topology: DeviceTopology,
        strategy: Strategy,
        profiler: OpProfiler,
        training: bool = True,
    ):
        self.graph = graph
        self.topology = topology
        self.strategy = strategy.copy()
        self.profiler = profiler
        self.training = training

        self.tasks: dict[int, Task] = {}
        # Flat struct-of-arrays mirror the simulators' hot loops read
        # (exe/device/rank columns, slot-indexed adjacency rows); kept in
        # lockstep by _new_task/_link and the splice paths below.
        self.arrays = TaskArrays()
        self._next_tid = 0
        self._last_splice: SpliceRecord | None = None
        # Bookkeeping for incremental splicing.  Parameter-sync tasks are
        # keyed by weight-sharing *group*: ops sharing parameters (e.g.
        # unrolled steps of one recurrent layer) synchronize gradients once
        # per iteration, not once per op.
        self.fwd: dict[int, list[int]] = {}
        self.bwd: dict[int, list[int]] = {}
        self.sync: dict[str, list[int]] = {}
        self.edge_tasks: dict[tuple[int, int, int], list[int]] = {}

        strategy.validate(graph, topology)
        for oid in graph.op_ids:
            self._make_op_tasks(oid)
        for edge in graph.edges():
            self._connect_edge(edge)
        for gkey, members in graph.param_groups().items():
            self._make_sync(gkey, members)

    # -- small helpers -----------------------------------------------------
    def _new_task(self, **kw) -> Task:
        t = Task(tid=self._next_tid, **kw)
        self._next_tid += 1
        self.tasks[t.tid] = t
        self.arrays.add(t.tid, t.exe_time, t.device, t.ckey, int(t.kind), t.nbytes)
        return t

    def _link(self, a: int, b: int) -> None:
        self.tasks[a].outs.append(b)
        self.tasks[b].ins.append(a)
        self.arrays.link(a, b)

    @property
    def num_tasks(self) -> int:
        return len(self.tasks)

    # -- construction --------------------------------------------------------
    def _make_op_tasks(self, oid: int) -> None:
        """Create forward (and backward) compute tasks for one op."""
        op = self.graph.op(oid)
        cfg = self.strategy[oid]
        fwd_ids: list[int] = []
        bwd_ids: list[int] = []
        make_bwd = self.training and not op.is_source
        for k in range(cfg.num_tasks):
            region = cfg.task_region(op, k)
            dev = self.topology.device(cfg.devices[k])
            f = self._new_task(
                kind=TaskKind.NORMAL,
                device=dev.did,
                exe_time=self.profiler.task_time(op, region, dev),
                ckey=(0, oid, k, 0),
                op_id=oid,
                index=k,
            )
            fwd_ids.append(f.tid)
            if make_bwd:
                b = self._new_task(
                    kind=TaskKind.NORMAL,
                    device=dev.did,
                    exe_time=self.profiler.task_time(op, region, dev, backward=True),
                    ckey=(0, oid, k, 1),
                    op_id=oid,
                    index=k,
                    backward=True,
                )
                bwd_ids.append(b.tid)
                # Backward needs the forward activations of the same task.
                self._link(f.tid, b.tid)
        self.fwd[oid] = fwd_ids
        self.bwd[oid] = bwd_ids

    def _connect_edge(self, edge: Edge) -> list[int]:
        """Wire producer/consumer task pairs of one tensor edge (step 2).

        Returns the communication tasks created (tracked per edge so a
        reconfiguration can splice them out).
        """
        src_op = self.graph.op(edge.src)
        dst_op = self.graph.op(edge.dst)
        src_cfg = self.strategy[edge.src]
        dst_cfg = self.strategy[edge.dst]
        dtype = src_op.out_shape.dtype_bytes
        comm_ids: list[int] = []
        src_fwd, dst_fwd = self.fwd[edge.src], self.fwd[edge.dst]
        src_bwd, dst_bwd = self.bwd[edge.src], self.bwd[edge.dst]

        for kj in range(dst_cfg.num_tasks):
            need = dst_op.input_region(dst_cfg.task_region(dst_op, kj), edge.slot)
            if need is None:
                continue
            dev_j = dst_cfg.devices[kj]
            for ki, vol in overlapping_tasks(src_op, src_cfg, need):
                dev_i = src_cfg.devices[ki]
                nbytes = float(vol * dtype)
                if dev_i == dev_j:
                    self._link(src_fwd[ki], dst_fwd[kj])
                    if src_bwd and dst_bwd:
                        self._link(dst_bwd[kj], src_bwd[ki])
                    continue
                conn = self.topology.connection(dev_i, dev_j)
                c = self._new_task(
                    kind=TaskKind.COMM,
                    device=conn.cid,
                    exe_time=self.profiler.comm_time(nbytes, conn),
                    ckey=(1, edge.src, edge.dst, edge.slot, kj, ki, 0),
                    nbytes=nbytes,
                    conn=conn,
                )
                comm_ids.append(c.tid)
                self._link(src_fwd[ki], c.tid)
                self._link(c.tid, dst_fwd[kj])
                if src_bwd and dst_bwd:
                    # Gradient flows the reverse direction in backward.
                    rconn = self.topology.connection(dev_j, dev_i)
                    cb = self._new_task(
                        kind=TaskKind.COMM,
                        device=rconn.cid,
                        exe_time=self.profiler.comm_time(nbytes, rconn),
                        ckey=(1, edge.src, edge.dst, edge.slot, kj, ki, 1),
                        nbytes=nbytes,
                        conn=rconn,
                    )
                    comm_ids.append(cb.tid)
                    self._link(dst_bwd[kj], cb.tid)
                    self._link(cb.tid, src_bwd[ki])
        self.edge_tasks[(edge.src, edge.dst, edge.slot)] = comm_ids
        return comm_ids

    def _make_sync(self, gkey: str, members: tuple[int, ...]) -> None:
        """Parameter synchronization + update tasks for one weight group.

        Tasks sharing identical parameter-dimension coordinates hold
        replicas of the same shard; a replica set spanning k devices
        performs a ring all-reduce (modelled as one comm task per ring
        hop carrying ``2(k-1)/k`` of the shard bytes), then every replica
        device runs an update task.  For multi-op groups (weight-shared
        unrolled steps) the gradients of *every* member feed one
        all-reduce: parameters synchronize once per iteration.
        """
        self.sync[gkey] = []
        if not self.training:
            return
        op0 = self.graph.op(members[0])
        if not op0.params or any(not self.bwd[m] for m in members):
            return
        cfg = self.strategy[members[0]]  # group members share one config
        pdims = {n for n, kind in op0.parallel_dims().items() if kind.name == "PARAMETER"}
        deg_names = [n for n, _ in cfg.degrees]

        replica_sets: dict[tuple[int, ...], list[int]] = {}
        for k in range(cfg.num_tasks):
            coords = cfg.task_coords(k)
            key = tuple(c for n, c in zip(deg_names, coords) if n in pdims)
            replica_sets.setdefault(key, []).append(k)

        created: list[int] = []
        dtype = op0.out_shape.dtype_bytes
        for shard_idx, task_idxs in enumerate(replica_sets.values()):
            shard_elems = op0.param_shard_volume(cfg.task_region(op0, task_idxs[0]))
            if shard_elems == 0:
                continue
            devs = sorted({cfg.devices[k] for k in task_idxs})
            grads = [self.bwd[m][k] for m in members for k in task_idxs]
            if len(devs) == 1:
                upd = self._new_task(
                    kind=TaskKind.UPDATE,
                    device=devs[0],
                    exe_time=self.profiler.update_time(shard_elems, self.topology.device(devs[0])),
                    ckey=(3, members[0], shard_idx, devs[0]),
                    op_id=members[0],
                )
                created.append(upd.tid)
                for g in grads:
                    self._link(g, upd.tid)
                continue
            k_g = len(devs)
            hop_bytes = 2.0 * (k_g - 1) / k_g * shard_elems * dtype
            ring_comm: list[int] = []
            for i, d in enumerate(devs):
                nxt = devs[(i + 1) % k_g]
                conn = self.topology.connection(d, nxt)
                c = self._new_task(
                    kind=TaskKind.COMM,
                    device=conn.cid,
                    exe_time=self.profiler.comm_time(hop_bytes, conn),
                    ckey=(2, members[0], shard_idx, i),
                    nbytes=hop_bytes,
                    conn=conn,
                    op_id=members[0],
                )
                ring_comm.append(c.tid)
                created.append(c.tid)
                for g in grads:
                    self._link(g, c.tid)
            for d in devs:
                upd = self._new_task(
                    kind=TaskKind.UPDATE,
                    device=d,
                    exe_time=self.profiler.update_time(shard_elems, self.topology.device(d)),
                    ckey=(3, members[0], shard_idx, d),
                    op_id=members[0],
                )
                created.append(upd.tid)
                for c in ring_comm:
                    self._link(c, upd.tid)
        self.sync[gkey] = created

    # -- incremental reconfiguration -----------------------------------------------
    def replace_config(
        self, op_id: int, new_cfg, keep_record: bool = False
    ) -> tuple[dict[int, "Task"], set[int]]:
        """Splice the configuration of ``op_id``'s weight-sharing group.

        Applies ``new_cfg`` to every op sharing ``op_id``'s parameters
        (a single op for unshared weights): removes the members'
        forward/backward tasks, the group's parameter-sync tasks, and the
        communication tasks on every adjacent tensor edge, then rebuilds
        them against the (unchanged) neighbor configurations.  This is
        ``UpdateTaskGraph`` from Algorithm 2.

        With ``keep_record=True`` the splice additionally stores a
        :class:`SpliceRecord` so :meth:`undo_last_splice` can restore the
        pre-splice graph without rebuilding any task (the speculative
        propose/revert fast path of the MCMC search).

        Returns
        -------
        (removed, dirty):
            ``removed`` -- mapping of removed task id -> the removed
            :class:`Task` object (consumers read its ``device`` to
            detach timeline entries, and the auto router compares its
            ``ckey``/``exe_time`` against the replacement tasks);
            ``dirty`` -- ids of new tasks plus surviving tasks whose
            predecessor sets changed (the seeds for delta simulation).
        """
        members = self.graph.group_members(op_id)
        member_set = set(members)
        gkey = self.graph.group_key(op_id)

        # Sync groups of *neighboring* weight-shared ops are untouched:
        # their gradients' producers keep their task ids.
        touched_edges: list[Edge] = []
        seen_edges: set[tuple[int, int, int]] = set()
        for m in members:
            for slot, src in enumerate(self.graph.inputs_of(m)):
                key = (src, m, slot)
                if key not in seen_edges:
                    seen_edges.add(key)
                    touched_edges.append(Edge(*key))
            for e in self.graph.consumers_of(m):
                key = (e.src, e.dst, e.slot)
                if key not in seen_edges:
                    seen_edges.add(key)
                    touched_edges.append(e)

        removed_ids: set[int] = set(self.sync[gkey])
        for m in members:
            removed_ids.update(self.fwd[m])
            removed_ids.update(self.bwd[m])
        for e in touched_edges:
            removed_ids.update(self.edge_tasks.get((e.src, e.dst, e.slot), ()))

        record: SpliceRecord | None = None
        if keep_record:
            # Saved *before* any mutation: the Task objects keep their
            # adjacency lists (only surviving neighbors' lists are edited
            # below), and the bookkeeping lists are replaced wholesale by
            # the rebuild, so holding references is enough.
            record = SpliceRecord(
                op_id=op_id,
                members=members,
                old_cfg=self.strategy[members[0]],
                removed_tasks=[self.tasks[tid] for tid in removed_ids],
                added_lo=self._next_tid,
                added_hi=self._next_tid,
                fwd_lists={m: self.fwd[m] for m in members},
                bwd_lists={m: self.bwd[m] for m in members},
                sync_key=gkey,
                sync_list=self.sync[gkey],
                edge_lists={
                    (e.src, e.dst, e.slot): self.edge_tasks.get((e.src, e.dst, e.slot), [])
                    for e in touched_edges
                },
            )

        removed: dict[int, Task] = {tid: self.tasks[tid] for tid in removed_ids}
        dirty: set[int] = set()
        for tid in removed_ids:
            # Frees the slot and scrubs it from surviving neighbors' rows;
            # the slots are recycled by the rebuild below.
            self.arrays.discard(tid)
            t = self.tasks[tid]
            for p in t.ins:
                if p not in removed_ids:
                    self.tasks[p].outs.remove(tid)
            for s in t.outs:
                if s not in removed_ids:
                    self.tasks[s].ins.remove(tid)
                    dirty.add(s)  # lost a predecessor: ready time may drop
        for tid in removed_ids:
            del self.tasks[tid]

        for m in members:
            self.strategy = self.strategy.with_config(m, new_cfg)
            self._make_op_tasks(m)
            dirty.update(self.fwd[m])
            dirty.update(self.bwd[m])
        for e in touched_edges:
            comm = self._connect_edge(e)
            dirty.update(comm)
            # Surviving neighbor tasks that gained predecessors: consumers'
            # forward tasks (fed by our new fwd/comm tasks) and producers'
            # backward tasks (fed by our new bwd/comm tasks).
            if e.src in member_set and e.dst not in member_set:
                dirty.update(self.fwd[e.dst])
            elif e.dst in member_set and e.src not in member_set:
                dirty.update(self.bwd[e.src])
        self._make_sync(gkey, members)
        dirty.update(self.sync[gkey])
        dirty -= removed.keys()
        if record is not None:
            record.added_hi = self._next_tid
        self._last_splice = record
        return removed, dirty

    def undo_last_splice(self) -> None:
        """Restore the graph to its state before the last recorded splice.

        Inverse of a ``replace_config(..., keep_record=True)``: pops the
        tasks that splice added, re-inserts the saved :class:`Task`
        objects, re-attaches their links to surviving neighbors, and
        restores the bookkeeping lists and the strategy.  Valid exactly
        once, immediately after the recorded splice (before any further
        ``replace_config``).
        """
        rec = self._last_splice
        if rec is None:
            raise RuntimeError("no recorded splice to undo")
        self._last_splice = None

        added: list[Task] = [self.tasks.pop(tid) for tid in range(rec.added_lo, rec.added_hi)]
        for t in added:
            self.arrays.discard(t.tid)
            for p in t.ins:
                surv = self.tasks.get(p)
                if surv is not None:
                    surv.outs.remove(t.tid)
            for s in t.outs:
                surv = self.tasks.get(s)
                if surv is not None:
                    surv.ins.remove(t.tid)

        removed_set = {t.tid for t in rec.removed_tasks}
        for t in rec.removed_tasks:
            self.tasks[t.tid] = t
            self.arrays.add(t.tid, t.exe_time, t.device, t.ckey, int(t.kind), t.nbytes)
        for t in rec.removed_tasks:
            # Each edge is re-recorded in the arrays exactly once: through
            # the consumer's ins for every predecessor, plus the producer's
            # outs only when the successor survived the splice (edges into
            # removed successors reappear via that successor's own ins).
            for p in t.ins:
                self.arrays.link(p, t.tid)
                if p not in removed_set:
                    self.tasks[p].outs.append(t.tid)
            for s in t.outs:
                if s not in removed_set:
                    self.tasks[s].ins.append(t.tid)
                    self.arrays.link(t.tid, s)

        self.fwd.update(rec.fwd_lists)
        self.bwd.update(rec.bwd_lists)
        self.sync[rec.sync_key] = rec.sync_list
        self.edge_tasks.update(rec.edge_lists)
        for m in rec.members:
            self.strategy = self.strategy.with_config(m, rec.old_cfg)

    # -- aggregate views ----------------------------------------------------------
    def comm_tasks(self) -> list[Task]:
        return [t for t in self.tasks.values() if t.kind == TaskKind.COMM]

    def total_comm_bytes(self) -> float:
        arr = self.arrays
        comm = int(TaskKind.COMM)
        return sum(
            arr.nbytes[slot]
            for slot in range(arr.num_slots)
            if arr.tid[slot] != -1 and arr.kind[slot] == comm
        )

    def total_compute_us(self) -> float:
        arr = self.arrays
        comm = int(TaskKind.COMM)
        return sum(
            arr.exe[slot]
            for slot in range(arr.num_slots)
            if arr.tid[slot] != -1 and arr.kind[slot] != comm
        )

    def describe(self) -> str:
        kinds = {k: 0 for k in TaskKind}
        for t in self.tasks.values():
            kinds[t.kind] += 1
        return (
            f"TaskGraph: {self.num_tasks} tasks "
            f"(normal={kinds[TaskKind.NORMAL]}, comm={kinds[TaskKind.COMM]}, "
            f"update={kinds[TaskKind.UPDATE]}), "
            f"comm={self.total_comm_bytes() / 1e6:.1f} MB"
        )
