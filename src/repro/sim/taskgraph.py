"""Task graph construction (Section 5.1 of the paper).

Given an operator graph, a device topology, and a parallelization
strategy, build the graph of *tasks*:

1. every operation contributes one **normal task** per configuration
   slot (and a mirrored **backward task** in training mode);
2. for every tensor edge, producer/consumer task pairs with shared data
   either get a direct dependency (same device) or a **communication
   task** placed on the connection between their devices;
3. every parameter shard replicated across devices gets a **ring
   all-reduce** (modelled as one communication task per ring hop carrying
   the standard ``2(k-1)/k`` traffic) followed by per-replica **update
   tasks** -- this is what makes parameter-synchronization cost visible
   to the search, reproducing Figure 8(b)'s transfer reductions.

The task graph supports *incremental reconfiguration*
(:meth:`TaskGraph.replace_config`): changing one operation's
configuration splices out only that op's tasks, its adjacent
communication tasks, and its parameter-sync tasks, which is the
``UpdateTaskGraph`` step of the paper's delta simulation algorithm
(Algorithm 2).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.ir.graph import Edge, OperatorGraph
from repro.machine.topology import Connection, DeviceTopology
from repro.profiler.profiler import OpProfiler
from repro.sim import kernels
from repro.sim.arrays import TaskArrays
from repro.soap.partition import overlapping_tasks
from repro.soap.strategy import Strategy

__all__ = ["TaskKind", "Task", "TaskGraph", "SpliceRecord", "SpliceRecipe"]


class TaskKind(enum.IntEnum):
    NORMAL = 0  # forward or backward compute task
    COMM = 1  # data transfer on a connection
    UPDATE = 2  # SGD parameter update


@dataclass(slots=True)
class Task:
    """One node of the task graph (Table 2's static properties).

    ``device`` is a compute-device id for NORMAL/UPDATE tasks and a
    connection id for COMM tasks; both live in one id space so the
    simulator treats them uniformly (Section 5.1: "we treat each hardware
    connection between devices as a communication device").

    ``ckey`` is a *canonical sort key*: a tuple derived from the task's
    structural identity (which op/edge/sync-group slot it fills), not from
    creation order.  The simulators break ready-time ties by ``ckey``, so
    the timeline of a strategy is identical no matter through which
    sequence of incremental reconfigurations the task graph was reached --
    the invariant that makes strategy-level simulation caching sound (see
    :mod:`repro.search.cache`).
    """

    tid: int
    kind: TaskKind
    device: int
    exe_time: float
    ckey: tuple[int, ...] = ()
    op_id: int = -1
    index: int = -1
    backward: bool = False
    nbytes: float = 0.0
    conn: Connection | None = None
    ins: list[int] = field(default_factory=list)
    outs: list[int] = field(default_factory=list)


@dataclass
class SpliceRecipe:
    """A memoized group rebuild: everything :meth:`TaskGraph.replace_config`
    would reconstruct for one (group, config, neighbor-configs) key.

    The rebuild half of a splice is a pure function of the group key, the
    new config, and the adjacent ops' configs (the graph, topology, and
    profiler are fixed per :class:`TaskGraph`, and the profiler is
    deterministic per task signature).  A recipe captures that function's
    output once -- task field tuples in creation order, dependency links
    as spec-index pairs, and the bookkeeping lists as index lists -- so a
    re-seen key replays it with fresh task ids and *zero* profiler,
    partition, or region calls.  Identity re-splices (re-applying an
    op's current config -- the ``resplice`` benchmark workload and every
    proposal that collides with the incumbent under a named algorithm)
    capture their recipe from the live group state before the splice, so
    even the first one replays.

    Links to surviving neighbor tasks are stored symbolically as
    ``(op, fwd|bwd, k)`` so a recipe stays valid when the neighbor was
    itself respliced in between: the neighbor's config is part of the
    cache key, which pins its ``fwd``/``bwd`` list lengths.
    """

    specs: list[tuple]  # (kind, device, exe, ckey, op_id, index, backward, nbytes, conn)
    kidx: list[int]  # per-spec stable intern index of the ckey (see key_index)
    internal: list[tuple[int, int]]  # links between two new tasks, spec indices
    external: list[tuple[int, int, tuple[int, int, int]]]  # (dir, spec idx, (op, f/b, k))
    fwd_idx: dict[int, list[int]]
    bwd_idx: dict[int, list[int]]
    edge_idx: dict[tuple[int, int, int], list[int]]
    sync_idx: list[int]


# Bounded recipe cache (FIFO eviction): per-op config spaces are small,
# so real searches cycle through few keys per group; the cap only guards
# degenerate grids.
_RECIPE_CAP = 256


@dataclass
class SpliceRecord:
    """Everything needed to undo one :meth:`TaskGraph.replace_config`.

    The removed :class:`Task` objects are kept alive with their adjacency
    lists intact, so an undo re-inserts them and re-attaches only the
    links to *surviving* neighbors -- no profiler calls, no task
    rebuilding, and (together with a timeline snapshot, see
    :meth:`~repro.sim.simulator.Simulator.propose`) no re-simulation.
    """

    op_id: int
    members: tuple[int, ...]
    old_cfg: object  # the members' shared ParallelConfig before the splice
    removed_tasks: list[Task]
    added_lo: int  # added task ids are the contiguous range [added_lo, added_hi)
    added_hi: int
    fwd_lists: dict[int, list[int]]
    bwd_lists: dict[int, list[int]]
    sync_key: str
    sync_list: list[int]
    edge_lists: dict[tuple[int, int, int], list[int]]


class TaskGraph:
    """Tasks + dependencies for (operator graph, topology, strategy)."""

    def __init__(
        self,
        graph: OperatorGraph,
        topology: DeviceTopology,
        strategy: Strategy,
        profiler: OpProfiler,
        training: bool = True,
    ):
        self.graph = graph
        self.topology = topology
        self.strategy = strategy.copy()
        self.profiler = profiler
        self.training = training

        self.tasks: dict[int, Task] = {}
        # Splice recipe cache: (group, new cfg, neighbor cfgs) -> the
        # memoized rebuild (see SpliceRecipe).  Hits skip every profiler/
        # partition call of the rebuild; counters feed the bench meta.
        self._recipes: dict[tuple, SpliceRecipe] = {}
        self.recipe_hits = 0
        self.recipe_misses = 0
        # Flat struct-of-arrays mirror the simulators' hot loops read
        # (exe/device/rank columns, slot-indexed adjacency rows); kept in
        # lockstep by _new_task/_link and the splice paths below.
        self.arrays = TaskArrays()
        self._next_tid = 0
        self._last_splice: SpliceRecord | None = None
        # True iff the most recent replace_config was a pure identity
        # recipe replay: the rebuilt subgraph is provably the removed one
        # modulo task ids (the splice is a pure function of its recipe
        # key), so consumers may repair timelines by renaming alone.
        self.last_splice_identity = False
        # Bookkeeping for incremental splicing.  Parameter-sync tasks are
        # keyed by weight-sharing *group*: ops sharing parameters (e.g.
        # unrolled steps of one recurrent layer) synchronize gradients once
        # per iteration, not once per op.
        self.fwd: dict[int, list[int]] = {}
        self.bwd: dict[int, list[int]] = {}
        self.sync: dict[str, list[int]] = {}
        self.edge_tasks: dict[tuple[int, int, int], list[int]] = {}

        strategy.validate(graph, topology)
        for oid in graph.op_ids:
            self._make_op_tasks(oid)
        for edge in graph.edges():
            self._connect_edge(edge)
        for gkey, members in graph.param_groups().items():
            self._make_sync(gkey, members)

    # -- small helpers -----------------------------------------------------
    def _new_task(self, **kw) -> Task:
        t = Task(tid=self._next_tid, **kw)
        self._next_tid += 1
        self.tasks[t.tid] = t
        self.arrays.add(t.tid, t.exe_time, t.device, t.ckey, int(t.kind), t.nbytes)
        return t

    def _link(self, a: int, b: int) -> None:
        self.tasks[a].outs.append(b)
        self.tasks[b].ins.append(a)
        self.arrays.link(a, b)

    @property
    def num_tasks(self) -> int:
        return len(self.tasks)

    # -- construction --------------------------------------------------------
    def _make_op_tasks(self, oid: int) -> None:
        """Create forward (and backward) compute tasks for one op."""
        op = self.graph.op(oid)
        cfg = self.strategy[oid]
        fwd_ids: list[int] = []
        bwd_ids: list[int] = []
        make_bwd = self.training and not op.is_source
        for k in range(cfg.num_tasks):
            region = cfg.task_region(op, k)
            dev = self.topology.device(cfg.devices[k])
            f = self._new_task(
                kind=TaskKind.NORMAL,
                device=dev.did,
                exe_time=self.profiler.task_time(op, region, dev),
                ckey=(0, oid, k, 0),
                op_id=oid,
                index=k,
            )
            fwd_ids.append(f.tid)
            if make_bwd:
                b = self._new_task(
                    kind=TaskKind.NORMAL,
                    device=dev.did,
                    exe_time=self.profiler.task_time(op, region, dev, backward=True),
                    ckey=(0, oid, k, 1),
                    op_id=oid,
                    index=k,
                    backward=True,
                )
                bwd_ids.append(b.tid)
                # Backward needs the forward activations of the same task.
                self._link(f.tid, b.tid)
        self.fwd[oid] = fwd_ids
        self.bwd[oid] = bwd_ids

    def _connect_edge(self, edge: Edge) -> list[int]:
        """Wire producer/consumer task pairs of one tensor edge (step 2).

        Returns the communication tasks created (tracked per edge so a
        reconfiguration can splice them out).
        """
        src_op = self.graph.op(edge.src)
        dst_op = self.graph.op(edge.dst)
        src_cfg = self.strategy[edge.src]
        dst_cfg = self.strategy[edge.dst]
        dtype = src_op.out_shape.dtype_bytes
        comm_ids: list[int] = []
        src_fwd, dst_fwd = self.fwd[edge.src], self.fwd[edge.dst]
        src_bwd, dst_bwd = self.bwd[edge.src], self.bwd[edge.dst]

        for kj in range(dst_cfg.num_tasks):
            need = dst_op.input_region(dst_cfg.task_region(dst_op, kj), edge.slot)
            if need is None:
                continue
            dev_j = dst_cfg.devices[kj]
            for ki, vol in overlapping_tasks(src_op, src_cfg, need):
                dev_i = src_cfg.devices[ki]
                nbytes = float(vol * dtype)
                if dev_i == dev_j:
                    self._link(src_fwd[ki], dst_fwd[kj])
                    if src_bwd and dst_bwd:
                        self._link(dst_bwd[kj], src_bwd[ki])
                    continue
                conn = self.topology.connection(dev_i, dev_j)
                c = self._new_task(
                    kind=TaskKind.COMM,
                    device=conn.cid,
                    exe_time=self.profiler.comm_time(nbytes, conn),
                    ckey=(1, edge.src, edge.dst, edge.slot, kj, ki, 0),
                    nbytes=nbytes,
                    conn=conn,
                )
                comm_ids.append(c.tid)
                self._link(src_fwd[ki], c.tid)
                self._link(c.tid, dst_fwd[kj])
                if src_bwd and dst_bwd:
                    # Gradient flows the reverse direction in backward.
                    rconn = self.topology.connection(dev_j, dev_i)
                    cb = self._new_task(
                        kind=TaskKind.COMM,
                        device=rconn.cid,
                        exe_time=self.profiler.comm_time(nbytes, rconn),
                        ckey=(1, edge.src, edge.dst, edge.slot, kj, ki, 1),
                        nbytes=nbytes,
                        conn=rconn,
                    )
                    comm_ids.append(cb.tid)
                    self._link(dst_bwd[kj], cb.tid)
                    self._link(cb.tid, src_bwd[ki])
        self.edge_tasks[(edge.src, edge.dst, edge.slot)] = comm_ids
        return comm_ids

    def _make_sync(self, gkey: str, members: tuple[int, ...]) -> None:
        """Parameter synchronization + update tasks for one weight group.

        Tasks sharing identical parameter-dimension coordinates hold
        replicas of the same shard; a replica set spanning k devices
        performs a ring all-reduce (modelled as one comm task per ring
        hop carrying ``2(k-1)/k`` of the shard bytes), then every replica
        device runs an update task.  For multi-op groups (weight-shared
        unrolled steps) the gradients of *every* member feed one
        all-reduce: parameters synchronize once per iteration.
        """
        self.sync[gkey] = []
        if not self.training:
            return
        op0 = self.graph.op(members[0])
        if not op0.params or any(not self.bwd[m] for m in members):
            return
        cfg = self.strategy[members[0]]  # group members share one config
        pdims = {n for n, kind in op0.parallel_dims().items() if kind.name == "PARAMETER"}
        deg_names = [n for n, _ in cfg.degrees]

        replica_sets: dict[tuple[int, ...], list[int]] = {}
        for k in range(cfg.num_tasks):
            coords = cfg.task_coords(k)
            key = tuple(c for n, c in zip(deg_names, coords) if n in pdims)
            replica_sets.setdefault(key, []).append(k)

        created: list[int] = []
        dtype = op0.out_shape.dtype_bytes
        for shard_idx, task_idxs in enumerate(replica_sets.values()):
            shard_elems = op0.param_shard_volume(cfg.task_region(op0, task_idxs[0]))
            if shard_elems == 0:
                continue
            devs = sorted({cfg.devices[k] for k in task_idxs})
            grads = [self.bwd[m][k] for m in members for k in task_idxs]
            if len(devs) == 1:
                upd = self._new_task(
                    kind=TaskKind.UPDATE,
                    device=devs[0],
                    exe_time=self.profiler.update_time(shard_elems, self.topology.device(devs[0])),
                    ckey=(3, members[0], shard_idx, devs[0]),
                    op_id=members[0],
                )
                created.append(upd.tid)
                for g in grads:
                    self._link(g, upd.tid)
                continue
            k_g = len(devs)
            hop_bytes = 2.0 * (k_g - 1) / k_g * shard_elems * dtype
            ring_comm: list[int] = []
            for i, d in enumerate(devs):
                nxt = devs[(i + 1) % k_g]
                conn = self.topology.connection(d, nxt)
                c = self._new_task(
                    kind=TaskKind.COMM,
                    device=conn.cid,
                    exe_time=self.profiler.comm_time(hop_bytes, conn),
                    ckey=(2, members[0], shard_idx, i),
                    nbytes=hop_bytes,
                    conn=conn,
                    op_id=members[0],
                )
                ring_comm.append(c.tid)
                created.append(c.tid)
                for g in grads:
                    self._link(g, c.tid)
            for d in devs:
                upd = self._new_task(
                    kind=TaskKind.UPDATE,
                    device=d,
                    exe_time=self.profiler.update_time(shard_elems, self.topology.device(d)),
                    ckey=(3, members[0], shard_idx, d),
                    op_id=members[0],
                )
                created.append(upd.tid)
                for c in ring_comm:
                    self._link(c, upd.tid)
        self.sync[gkey] = created

    # -- splice recipes ------------------------------------------------------------
    def _group_tids(
        self, members, touched_edges, gkey
    ) -> tuple[list[int], dict[int, list[int]], dict[int, list[int]], dict, list[int]]:
        """The group's task ids in canonical creation order, plus the
        bookkeeping lists re-expressed as indices into that order."""
        new_tids: list[int] = []
        fwd_idx: dict[int, list[int]] = {}
        bwd_idx: dict[int, list[int]] = {}
        for m in members:
            fl, bl = self.fwd[m], self.bwd[m]
            fi: list[int] = []
            bi: list[int] = []
            for k, f in enumerate(fl):
                fi.append(len(new_tids))
                new_tids.append(f)
                if bl:
                    bi.append(len(new_tids))
                    new_tids.append(bl[k])
            fwd_idx[m] = fi
            bwd_idx[m] = bi
        edge_idx: dict[tuple[int, int, int], list[int]] = {}
        for e in touched_edges:
            key = (e.src, e.dst, e.slot)
            lst = self.edge_tasks.get(key, [])
            idxs = list(range(len(new_tids), len(new_tids) + len(lst)))
            new_tids.extend(lst)
            edge_idx[key] = idxs
        sync_list = self.sync[gkey]
        sync_idx = list(range(len(new_tids), len(new_tids) + len(sync_list)))
        new_tids.extend(sync_list)
        return new_tids, fwd_idx, bwd_idx, edge_idx, sync_idx

    def _capture_recipe(self, members, member_set, touched_edges, gkey):
        """Record the group's current build as a :class:`SpliceRecipe`.

        Pure read of the live graph; returns ``None`` when a dependency
        cannot be expressed symbolically (never observed -- a defensive
        bail that just skips caching).
        """
        new_tids, fwd_idx, bwd_idx, edge_idx, sync_idx = self._group_tids(
            members, touched_edges, gkey
        )
        new_map = {tid: i for i, tid in enumerate(new_tids)}
        rev: dict[int, tuple[int, int, int]] = {}
        for o in {e.src for e in touched_edges} | {e.dst for e in touched_edges}:
            if o in member_set:
                continue
            for k, t in enumerate(self.fwd[o]):
                rev[t] = (o, 0, k)
            for k, t in enumerate(self.bwd[o]):
                rev[t] = (o, 1, k)
        specs: list[tuple] = []
        kidx: list[int] = []
        internal: list[tuple[int, int]] = []
        external: list[tuple[int, int, tuple[int, int, int]]] = []
        tasks = self.tasks
        key_index = self.arrays.key_index
        for i, tid in enumerate(new_tids):
            t = tasks[tid]
            specs.append(
                (t.kind, t.device, t.exe_time, t.ckey,
                 t.op_id, t.index, t.backward, t.nbytes, t.conn)
            )
            kidx.append(key_index(t.ckey))
            for p in t.ins:
                j = new_map.get(p)
                if j is not None:
                    internal.append((j, i))
                else:
                    ref = rev.get(p)
                    if ref is None:
                        return None
                    external.append((0, i, ref))
            for s in t.outs:
                if s in new_map:
                    continue
                ref = rev.get(s)
                if ref is None:
                    return None
                external.append((1, i, ref))
        return SpliceRecipe(
            specs, kidx, internal, external, fwd_idx, bwd_idx, edge_idx, sync_idx
        )

    def _store_recipe(self, rkey, recipe) -> None:
        cache = self._recipes
        if rkey not in cache and len(cache) >= _RECIPE_CAP:
            cache.pop(next(iter(cache)))
        cache[rkey] = recipe

    def _replay_recipe(self, recipe: SpliceRecipe, members, new_cfg, gkey) -> list[int]:
        """Rebuild the group from a memoized recipe; returns the new tids.

        Mirrors the direct rebuild exactly -- same task fields (the
        profiler is deterministic per signature, so the captured
        ``exe_time`` floats are bitwise what fresh calls would return),
        same creation order (hence the same slot recycling in the arrays
        mirror), same bookkeeping lists -- without any profiler,
        partition, or region computation.
        """
        tasks = self.tasks
        arrays = self.arrays
        tid = self._next_tid
        new_tids: list[int] = []
        new_tasks: list[Task] = []
        new_slots: list[int] = []
        # Inlined arrays.add: replayed ckeys are already interned (the
        # intern table never shrinks), so the memoized stable intern
        # index turns rank lookup into one array read, and the column
        # writes run without per-task call overhead.
        free = arrays.free
        exe_a, dev_a, rank_a = arrays.exe, arrays.dev, arrays.rank
        tid_a, kind_a, nbytes_a = arrays.tid, arrays.kind, arrays.nbytes
        ckey_a = arrays.ckey
        idx_rank = arrays._idx_rank
        slot_of = arrays.slot_of
        dev_count = arrays.dev_count
        for spec, j in zip(recipe.specs, recipe.kidx):
            # Spec tuples are stored in Task field order (tid excluded),
            # so construction is one positional call.
            t = Task(tid, *spec)
            tasks[tid] = t
            if free:
                slot = free.pop()
            else:
                slot = len(tid_a)
                exe_a.append(0.0)
                dev_a.append(0)
                rank_a.append(0)
                tid_a.append(-1)
                kind_a.append(0)
                nbytes_a.append(0.0)
                ckey_a.append(None)
                arrays.ins.append([])
                arrays.outs.append([])
            exe_a[slot] = spec[2]
            d = spec[1]
            dev_a[slot] = d
            dev_count[d] = dev_count.get(d, 0) + 1
            rank_a[slot] = idx_rank[j]
            tid_a[slot] = tid
            kind_a[slot] = spec[0]
            nbytes_a[slot] = spec[7]
            ckey_a[slot] = spec[3]
            slot_of[tid] = slot
            new_slots.append(slot)
            new_tids.append(tid)
            new_tasks.append(t)
            tid += 1
        self._next_tid = tid
        # Slot-level linking: the endpoints' Task objects and slots are at
        # hand, so the generic _link's four dict probes per edge collapse
        # to list appends (the replay hot loop).
        a_ins, a_outs = arrays.ins, arrays.outs
        for a, b in recipe.internal:
            new_tasks[a].outs.append(new_tids[b])
            new_tasks[b].ins.append(new_tids[a])
            a_outs[new_slots[a]].append(new_slots[b])
            a_ins[new_slots[b]].append(new_slots[a])
        slot_of = arrays.slot_of
        for direction, i, (o, fb, k) in recipe.external:
            other = (self.bwd[o] if fb else self.fwd[o])[k]
            ot = tasks[other]
            oslot = slot_of[other]
            if direction:
                new_tasks[i].outs.append(other)
                ot.ins.append(new_tids[i])
                a_outs[new_slots[i]].append(oslot)
                a_ins[oslot].append(new_slots[i])
            else:
                ot.outs.append(new_tids[i])
                new_tasks[i].ins.append(other)
                a_outs[oslot].append(new_slots[i])
                a_ins[new_slots[i]].append(oslot)
        for m in members:
            self.strategy = self.strategy.with_config(m, new_cfg)
            self.fwd[m] = [new_tids[i] for i in recipe.fwd_idx[m]]
            self.bwd[m] = [new_tids[i] for i in recipe.bwd_idx[m]]
        for key, idxs in recipe.edge_idx.items():
            self.edge_tasks[key] = [new_tids[i] for i in idxs]
        self.sync[gkey] = [new_tids[i] for i in recipe.sync_idx]
        return new_tids

    # -- incremental reconfiguration -----------------------------------------------
    def replace_config(
        self, op_id: int, new_cfg, keep_record: bool = False
    ) -> tuple[dict[int, "Task"], set[int]]:
        """Splice the configuration of ``op_id``'s weight-sharing group.

        Applies ``new_cfg`` to every op sharing ``op_id``'s parameters
        (a single op for unshared weights): removes the members'
        forward/backward tasks, the group's parameter-sync tasks, and the
        communication tasks on every adjacent tensor edge, then rebuilds
        them against the (unchanged) neighbor configurations.  This is
        ``UpdateTaskGraph`` from Algorithm 2.

        With ``keep_record=True`` the splice additionally stores a
        :class:`SpliceRecord` so :meth:`undo_last_splice` can restore the
        pre-splice graph without rebuilding any task (the speculative
        propose/revert fast path of the MCMC search).

        Returns
        -------
        (removed, dirty):
            ``removed`` -- mapping of removed task id -> the removed
            :class:`Task` object (consumers read its ``device`` to
            detach timeline entries, and the auto router compares its
            ``ckey``/``exe_time`` against the replacement tasks);
            ``dirty`` -- ids of new tasks plus surviving tasks whose
            predecessor sets changed (the seeds for delta simulation).
        """
        members = self.graph.group_members(op_id)
        member_set = set(members)
        gkey = self.graph.group_key(op_id)
        self.last_splice_identity = False

        # Sync groups of *neighboring* weight-shared ops are untouched:
        # their gradients' producers keep their task ids.
        touched_edges: list[Edge] = []
        seen_edges: set[tuple[int, int, int]] = set()
        for m in members:
            for slot, src in enumerate(self.graph.inputs_of(m)):
                key = (src, m, slot)
                if key not in seen_edges:
                    seen_edges.add(key)
                    touched_edges.append(Edge(*key))
            for e in self.graph.consumers_of(m):
                key = (e.src, e.dst, e.slot)
                if key not in seen_edges:
                    seen_edges.add(key)
                    touched_edges.append(e)

        # Recipe lookup: the rebuild below is a pure function of this key
        # (see SpliceRecipe).  An identity re-splice whose key is cold is
        # captured from the live group state *before* the splice -- the
        # current build is exactly what the key produces -- so even the
        # first identity proposal replays instead of rebuilding.  Replay
        # rides the same escape hatch as the numpy kernels:
        # ``REPRO_SIM_KERNELS=python`` forces the reference rebuild
        # (profiler, partition, and region calls included), which is both
        # the debugging baseline for recipe bugs and the pre-optimization
        # cost the benchmarks compare against.
        old_cfg = self.strategy[members[0]]
        recipe = None
        rkey = None
        if kernels.kernels_enabled():
            neighbor_ops = sorted(
                ({e.src for e in touched_edges} | {e.dst for e in touched_edges})
                - member_set
            )
            rkey = (gkey, new_cfg, tuple((o, self.strategy[o]) for o in neighbor_ops))
            recipe = self._recipes.get(rkey)
            if recipe is None and new_cfg == old_cfg:
                recipe = self._capture_recipe(members, member_set, touched_edges, gkey)
                if recipe is not None:
                    self._store_recipe(rkey, recipe)

        removed_ids: set[int] = set(self.sync[gkey])
        for m in members:
            removed_ids.update(self.fwd[m])
            removed_ids.update(self.bwd[m])
        for e in touched_edges:
            removed_ids.update(self.edge_tasks.get((e.src, e.dst, e.slot), ()))

        record: SpliceRecord | None = None
        if keep_record:
            # Saved *before* any mutation: the Task objects keep their
            # adjacency lists (only surviving neighbors' lists are edited
            # below), and the bookkeeping lists are replaced wholesale by
            # the rebuild, so holding references is enough.
            record = SpliceRecord(
                op_id=op_id,
                members=members,
                old_cfg=self.strategy[members[0]],
                removed_tasks=[self.tasks[tid] for tid in removed_ids],
                added_lo=self._next_tid,
                added_hi=self._next_tid,
                fwd_lists={m: self.fwd[m] for m in members},
                bwd_lists={m: self.bwd[m] for m in members},
                sync_key=gkey,
                sync_list=self.sync[gkey],
                edge_lists={
                    (e.src, e.dst, e.slot): self.edge_tasks.get((e.src, e.dst, e.slot), [])
                    for e in touched_edges
                },
            )

        removed: dict[int, Task] = {tid: self.tasks[tid] for tid in removed_ids}
        dirty: set[int] = set()
        # Frees the slots and scrubs them from surviving neighbors' rows
        # (intra-batch edges skip the scan entirely); the slots are
        # recycled by the rebuild below.
        self.arrays.discard_batch(removed_ids)
        tasks = self.tasks
        for tid, t in removed.items():
            for p in t.ins:
                if p not in removed_ids:
                    tasks[p].outs.remove(tid)
            for s in t.outs:
                if s not in removed_ids:
                    tasks[s].ins.remove(tid)
                    dirty.add(s)  # lost a predecessor: ready time may drop
        for tid in removed_ids:
            del tasks[tid]

        if recipe is not None:
            self.recipe_hits += 1
            self.last_splice_identity = new_cfg == old_cfg
            dirty.update(self._replay_recipe(recipe, members, new_cfg, gkey))
        else:
            self.recipe_misses += 1
            for m in members:
                self.strategy = self.strategy.with_config(m, new_cfg)
                self._make_op_tasks(m)
                dirty.update(self.fwd[m])
                dirty.update(self.bwd[m])
            for e in touched_edges:
                dirty.update(self._connect_edge(e))
            self._make_sync(gkey, members)
            dirty.update(self.sync[gkey])
            if rkey is not None:
                fresh = self._capture_recipe(members, member_set, touched_edges, gkey)
                if fresh is not None:
                    self._store_recipe(rkey, fresh)
        # Surviving neighbor tasks that gained predecessors: consumers'
        # forward tasks (fed by our new fwd/comm tasks) and producers'
        # backward tasks (fed by our new bwd/comm tasks).
        for e in touched_edges:
            if e.src in member_set and e.dst not in member_set:
                dirty.update(self.fwd[e.dst])
            elif e.dst in member_set and e.src not in member_set:
                dirty.update(self.bwd[e.src])
        dirty -= removed.keys()
        if record is not None:
            record.added_hi = self._next_tid
        self._last_splice = record
        return removed, dirty

    def undo_last_splice(self) -> None:
        """Restore the graph to its state before the last recorded splice.

        Inverse of a ``replace_config(..., keep_record=True)``: pops the
        tasks that splice added, re-inserts the saved :class:`Task`
        objects, re-attaches their links to surviving neighbors, and
        restores the bookkeeping lists and the strategy.  Valid exactly
        once, immediately after the recorded splice (before any further
        ``replace_config``).
        """
        rec = self._last_splice
        if rec is None:
            raise RuntimeError("no recorded splice to undo")
        self._last_splice = None

        added: list[Task] = [self.tasks.pop(tid) for tid in range(rec.added_lo, rec.added_hi)]
        self.arrays.discard_batch(range(rec.added_lo, rec.added_hi))
        for t in added:
            for p in t.ins:
                surv = self.tasks.get(p)
                if surv is not None:
                    surv.outs.remove(t.tid)
            for s in t.outs:
                surv = self.tasks.get(s)
                if surv is not None:
                    surv.ins.remove(t.tid)

        removed_set = {t.tid for t in rec.removed_tasks}
        for t in rec.removed_tasks:
            self.tasks[t.tid] = t
            self.arrays.add(t.tid, t.exe_time, t.device, t.ckey, int(t.kind), t.nbytes)
        for t in rec.removed_tasks:
            # Each edge is re-recorded in the arrays exactly once: through
            # the consumer's ins for every predecessor, plus the producer's
            # outs only when the successor survived the splice (edges into
            # removed successors reappear via that successor's own ins).
            for p in t.ins:
                self.arrays.link(p, t.tid)
                if p not in removed_set:
                    self.tasks[p].outs.append(t.tid)
            for s in t.outs:
                if s not in removed_set:
                    self.tasks[s].ins.append(t.tid)
                    self.arrays.link(t.tid, s)

        self.fwd.update(rec.fwd_lists)
        self.bwd.update(rec.bwd_lists)
        self.sync[rec.sync_key] = rec.sync_list
        self.edge_tasks.update(rec.edge_lists)
        for m in rec.members:
            self.strategy = self.strategy.with_config(m, rec.old_cfg)

    # -- aggregate views ----------------------------------------------------------
    def comm_tasks(self) -> list[Task]:
        return [t for t in self.tasks.values() if t.kind == TaskKind.COMM]

    def total_comm_bytes(self) -> float:
        arr = self.arrays
        comm = int(TaskKind.COMM)
        return sum(
            arr.nbytes[slot]
            for slot in range(arr.num_slots)
            if arr.tid[slot] != -1 and arr.kind[slot] == comm
        )

    def total_compute_us(self) -> float:
        arr = self.arrays
        comm = int(TaskKind.COMM)
        return sum(
            arr.exe[slot]
            for slot in range(arr.num_slots)
            if arr.tid[slot] != -1 and arr.kind[slot] != comm
        )

    def describe(self) -> str:
        kinds = {k: 0 for k in TaskKind}
        for t in self.tasks.values():
            kinds[t.kind] += 1
        return (
            f"TaskGraph: {self.num_tasks} tasks "
            f"(normal={kinds[TaskKind.NORMAL]}, comm={kinds[TaskKind.COMM]}, "
            f"update={kinds[TaskKind.UPDATE]}), "
            f"comm={self.total_comm_bytes() / 1e6:.1f} MB"
        )
