"""Numpy bulk kernels behind the timeline sweeps (Algorithm 1 and 2).

The reference sweeps in :mod:`~repro.sim.full_sim` and
:mod:`~repro.sim.delta_sim` pay one Python bytecode dispatch per task per
proposal.  This module batches that work where the schedule structure
allows it without changing a single output bit:

* **Level-batched heap drains** -- consecutive heap pops sharing a ready
  time form a *level*.  The drain's main loop is the reference pop loop
  plus a two-op streak tracker, so thin levels (narrow graph regions,
  the common case) pay essentially nothing; once a streak of equal-ready
  pops reaches ``FAT_RUN`` the rest of the level is collected and -- when
  every member has positive execution time, so none can schedule an
  equal-ready successor -- the whole batch schedules in one vectorized
  step.  A *stable* sort by device preserves the heap's ``(rank, slot)``
  tie order inside each device, which is exactly the scalar per-device
  execution order.
* **Vectorized per-device end-time chain scans** -- within a device
  segment the first task starts at ``max(readyTime, devLastEnd)`` and
  every later one starts exactly at its chain predecessor's end
  (positive exe keeps ends strictly past the shared ready time), so the
  scan is a short carry loop of pure adds in the reference evaluation
  order; float adds and maxes reproduce the scalar results bit for bit.
* **Batched ready-time maxes** -- a batch's successor relaxation gathers
  the CSR successor rows once, groups them by successor with one stable
  argsort, and reduces each group's end-time max with
  ``np.maximum.reduceat`` -- all O(batch edges), no full-width column
  scans -- before a compact per-unique-successor scatter updates
  ``slot_ready``/``indeg`` and releases newly-ready tasks.

The delta suffix reuses the same drain without a membership test:
non-suffix slots enter with an in-degree of zero, so the first decrement
drives them negative and they can never reach the ``indeg == 0``
scheduling condition again; their ``slot_ready`` updates land in scratch
that nobody reads.  Dropping the per-edge membership probe (and the
dict-based drain state) is what makes the kernel suffix sweep cheaper
than the scalar reference even when no level is fat.

Bit-identity is the contract (the property suites in
``tests/sim/test_sim_kernels.py`` enforce it), which is what lets all
timeline algorithms keep sharing one persistent-store shard.  Setting
``REPRO_SIM_KERNELS=python`` forces the scalar reference
implementations -- the escape hatch for debugging and for environments
without numpy (where the kernels disable themselves).
"""

from __future__ import annotations

import heapq
import os
from bisect import bisect_left
from itertools import chain, repeat

try:  # pragma: no cover - exercised via kernels_enabled() both ways
    import numpy as _np
except ImportError:  # pragma: no cover - the toolchain ships numpy
    _np = None

__all__ = [
    "kernels_enabled",
    "full_kernel",
    "suffix_drain",
    "propagate_drain",
    "FAT_RUN",
]

# Streak length at which an equal-ready level is declared fat: after this
# many consecutive pops share a ready time, the rest of the level is
# collected and batch-scheduled.  Below this the per-call numpy dispatch
# overhead exceeds the scalar loop it replaces (measured crossover on the
# Inception/16 acceptance graphs); tests drop it to exercise the
# vectorized path on small graphs.
FAT_RUN = 48

# A collected remainder smaller than this schedules through the scalar
# merge-drain even when all-positive -- a vectorized step's fixed
# dispatch overhead needs this many tasks to amortize.
_VEC_MIN = 32


# The valid REPRO_SIM_KERNELS values (empty/unset means "numpy").
_KERNEL_MODES = ("python", "numpy")


def kernels_enabled() -> bool:
    """Whether the numpy kernels back the sweeps (checked per call).

    ``REPRO_SIM_KERNELS`` selects the implementation: ``numpy`` (or
    unset/empty) runs the bulk kernels, ``python`` forces the scalar
    reference loops.  Anything else raises ``ValueError`` -- a typo like
    ``REPRO_SIM_KERNELS=phyton`` used to silently select the kernels,
    which is exactly the opposite of what the escape hatch is for.
    """
    mode = os.environ.get("REPRO_SIM_KERNELS", "").strip().lower()
    if mode and mode not in _KERNEL_MODES:
        raise ValueError(
            f"unknown REPRO_SIM_KERNELS value {mode!r}; valid: "
            f"{'/'.join(_KERNEL_MODES)} (empty selects numpy)"
        )
    if _np is None:
        return False
    return mode != "python"


def full_kernel(tg):
    """Algorithm 1 on the numpy kernels; bit-identical to ``full_simulate``."""
    from .full_sim import Timeline

    np = _np
    tl = Timeline()
    arr = tg.arrays
    ns = arr.num_slots
    total = arr.num_live
    if total == 0:
        return tl
    # Vectorized init: in-degrees from the CSR predecessor row lengths,
    # the frontier found in one masked scan (free slots have cleared
    # rows, so the live mask keeps them out of the initial heap).
    ind_np = np.fromiter(map(len, arr.ins), np.int64, count=ns)
    live = np.frombuffer(arr.tid, dtype=np.int64) != -1
    frontier = np.flatnonzero(live & (ind_np == 0))
    rank_np = np.frombuffer(arr.rank, dtype=np.int64)
    heap = list(zip(repeat(0.0), rank_np[frontier].tolist(), frontier.tolist()))
    heapq.heapify(heap)
    scheduled, makespan, _ = _drain(
        heap,
        arr,
        ind_np.tolist(),
        [0.0] * ns,
        float("-inf"),
        tl.ready,
        tl.start,
        tl.end,
        tl.device_order,
        {},
        0.0,
    )
    if scheduled != total:
        raise RuntimeError(
            f"task graph has a cycle: scheduled {scheduled} of {total} tasks"
        )
    tl.makespan = makespan
    return tl


def suffix_drain(
    tg,
    suffix_slots,
    t_cut,
    ready,
    start,
    end,
    order,
    dev_last_end,
    makespan,
):
    """Algorithm 1 over a delta suffix on the numpy kernels.

    Same contract as the scalar suffix sweep in ``delta_simulate``:
    repairs the timeline dicts in place past ``t_cut``.  Returns
    ``(scheduled, makespan, ok)``; ``ok`` is False when a pop lands
    before the cut (the caller's prefix-safety fallback).
    """
    arr = tg.arrays
    rank, tids = arr.rank, arr.tid
    all_ins = arr.ins
    ns = len(tids)
    memb = bytearray(ns)
    for slot in suffix_slots:
        memb[slot] = 1
    indeg = [0] * ns
    slot_ready = [0.0] * ns
    heap: list[tuple[float, int, int]] = []
    for slot in suffix_slots:
        n = 0
        est = 0.0
        for p in all_ins[slot]:
            if memb[p]:
                n += 1
            else:
                pe = end[tids[p]]  # fixed predecessor: final value
                if pe > est:
                    est = pe
        indeg[slot] = n
        slot_ready[slot] = est
        if n == 0:
            heap.append((est, rank[slot], slot))
    heapq.heapify(heap)
    return _drain(
        heap,
        arr,
        indeg,
        slot_ready,
        t_cut,
        ready,
        start,
        end,
        order,
        dev_last_end,
        makespan,
    )


def propagate_drain(tg, tl, removed, dirty):
    """Algorithm 2 (change propagation) drained in batched repair fronts.

    Same contract as the scalar engine in
    :func:`~repro.sim.propagate.propagate_simulate`, which dispatches
    here when the kernels are enabled: repairs ``tl`` in place given a
    splice's ``removed``/``dirty`` sets, converging on exactly the
    fixed point of the scheduling equations -- so the result is
    bit-identical to the scalar loop and to the reference sweeps.
    Instead of a global priority queue settling one task per pop, the
    repair runs in *rounds of fronts*:

    1. **Batched detach.**  Removed chain entries are dropped per
       device in one pass.  A removed entry whose canonical key
       returns on the same device is *replaced in place* -- the
       identity-resplice fast path: the newcomer inherits the old
       entry's position *and its whole (ready, start, end) triple* as
       an optimistic guess, so no list memmove happens and -- when the
       re-derivation verifies the guess -- the change cone collapses on
       contact instead of reopening every data successor.  The rest
       bisect-delete descending (located indices stay valid), or, when
       a device loses a dense run, rebuild through one set-membership
       filter.  Every entry that follows a dropped or relocated one is
       *touch-marked*: its chain predecessor changed.
    2. **Ready fronts.**  Every task whose ready time may have moved
       (dirty seeds, data successors of changed ends, released
       waiters) re-derives ``max(pred ends)`` together.  A task with
       an unreadable or still-unsettled predecessor *parks* in that
       predecessor's waiter list -- the scalar engine's data gate --
       and is released by its settle, so the fronts sweep the cone in
       dependency order instead of thrashing on stale values.  Entries
       whose ready moved relocate by bisect, touch-marking the
       displaced followers at both positions.
    3. **Chain re-scan fronts.**  Each device re-walks only from its
       touched positions, in position order, recomputing
       ``start = max(ready, prev end)`` / ``end = start + exe`` and
       stopping at the first entry whose pair is unchanged (branch
       termination); changed ends reopen data successors for the next
       ready front.  A walk that keeps writing switches to the
       vectorized busy-segment sweep (:func:`_chain_sweep`), which
       left-folds ``np.add.accumulate`` chains in the scalar
       evaluation order -- bit-identical adds -- and splits at idle
       gaps.

    Optimistic guesses are always re-verified before the drain can
    finish, and every value write reopens its readers, so the loop can
    only terminate at the unique fixed point.  Returns ``(recomputed,
    skips, ok)``; ``ok=False`` signals chain/timeline drift or a stuck
    front -- the caller must re-simulate authoritatively.  Returns
    ``None`` -- *before touching the timeline* -- when the occupancy
    pre-scan routes the repair to the scalar engine instead.
    """
    np = _np
    arr = tg.arrays
    exe, dev, tids_a, ckeys = arr.exe, arr.dev, arr.tid, arr.ckey
    all_ins, all_outs = arr.ins, arr.outs
    slot_of = arr.slot_of
    ready, start, end = tl.ready, tl.start, tl.end
    order = tl.device_order
    ns = len(tids_a)
    fat = FAT_RUN

    # ---- new-task index (drives matching and the routing pre-scan) ------
    by_ckey: dict = {}  # new task ckey -> slot (for removed matching)
    for tid in dirty:
        slot = slot_of.get(tid)
        if slot is not None and tid not in ready:
            by_ckey[ckeys[slot]] = slot

    # ---- decline pre-scan (occupancy routing, engine level) --------------
    # The front engine converges in one or two rounds when the splice is
    # *contact-shaped*: every removed chain entry is replaced in place by
    # a same-ckey/same-device newcomer that inherits its triple, so the
    # cone collapses on contact (identity resplices, revert-heavy MCMC
    # tails).  Dense mutations instead push real time changes through the
    # cut-time suffix, where the unordered rounds degenerate into chaotic
    # iteration the scalar heap never suffers.  Decide *before mutating
    # anything*: proceed when the splice is contact-shaped or its
    # occupancy cone (tasks at or after the cut across all device
    # chains) is small; otherwise return ``None`` and let the caller run
    # the scalar heap engine -- same fixed point, no fallback.
    matched = 0
    n_entries = 0
    t_cut = None
    for rtid, t in removed.items():
        r = ready.get(rtid)
        if r is None:
            continue
        n_entries += 1
        if t_cut is None or r < t_cut:
            t_cut = r
        nslot = by_ckey.get(t.ckey)
        if nslot is not None and dev[nslot] == t.device and rtid in end:
            matched += 1
    if matched != n_entries:
        cone = 0
        for lst in order.values():
            cone += len(lst) - bisect_left(lst, (t_cut,))
        if cone > PROPAGATE_CONE_LIMIT:
            return None
    elif tg.last_splice_identity and matched == len(by_ckey):
        # Pure identity replay, fully contact-shaped: the splice is a
        # pure function of its recipe key, so the rebuilt subgraph *is*
        # the removed one modulo task ids -- same ckeys, exe times,
        # devices, and boundary attachments.  The timeline fixed point
        # is invariant under that renaming, so the whole repair is the
        # rename itself: swap each entry's tid and move its triple.  No
        # verification rounds are needed (the property suite and the
        # bench's bitwise gate cross-check the invariance).
        by_dev: dict = {}
        for rtid, t in removed.items():
            r = ready.pop(rtid, None)
            if r is None:
                continue
            row = by_dev.get(t.device)
            if row is None:
                row = by_dev[t.device] = []
            row.append((r, t.ckey, rtid))
        start_pop = start.pop
        end_pop = end.pop
        for d, entries in by_dev.items():
            lst = order.get(d)
            if not lst:
                _giveup("rename-locate")
                return 0, 0, False
            entries.sort()
            n = len(lst)
            # Merge walk: a splice's entries sit in near-contiguous runs,
            # so after each replacement the next one is usually adjacent;
            # bisect only across survivor gaps.
            idx = bisect_left(lst, entries[0])
            for entry in entries:
                if idx >= n or lst[idx] != entry:
                    idx = bisect_left(lst, entry, idx)
                    if idx >= n or lst[idx] != entry:
                        _giveup("rename-locate")
                        return 0, 0, False
                r, ck, rtid = entry
                ntid = tids_a[by_ckey[ck]]
                lst[idx] = (r, ck, ntid)
                idx += 1
                ready[ntid] = r
                start[ntid] = start_pop(rtid)
                end[ntid] = end_pop(rtid)
        return 0, matched, True

    # ---- seed classification: survivors vs new tasks ---------------------
    # ``unsettled`` gates the ready fronts: readers park on a slot whose
    # bit is set instead of consuming a value that is about to change.
    # Allocated only past the routing pre-scan: the identity rename and
    # the scalar-engine decline never touch them.
    open_: set[int] = set()  # slots whose ready time needs re-deriving
    unsettled = bytearray(ns)  # readers park on these
    pend_r = bytearray(ns)  # ready not re-derived yet: walks defer
    for tid in dirty:
        slot = slot_of.get(tid)
        if slot is None:
            continue
        open_.add(slot)
        unsettled[slot] = 1
        pend_r[slot] = 1

    # ---- batched detach of removed chain entries -------------------------
    touched: dict[int, set] = {}  # device -> chain entries to re-scan
    entry_r: dict[int, float] = {}  # slot -> its entry's (maybe guessed) r
    dels: dict[int, list] = {}
    for rtid, t in removed.items():
        r = ready.pop(rtid, None)
        s_old = start.pop(rtid, None)
        e_old = end.pop(rtid, None)
        if r is None:
            continue
        d = t.device
        nslot = by_ckey.get(t.ckey)
        if nslot is not None and dev[nslot] == d and e_old is not None:
            lst = order.get(d)
            entry = (r, t.ckey, rtid)
            idx = bisect_left(lst, entry) if lst else -1
            if idx < 0 or idx >= len(lst) or lst[idx] != entry:
                _giveup("replace-locate")
                return 0, 0, False
            del by_ckey[t.ckey]
            ntid = tids_a[nslot]
            # In-place replacement: ckeys are unique among live tasks,
            # so swapping the tid component cannot break the sort.  The
            # newcomer inherits its counterpart's triple as a readable
            # guess (its bit stays clear: readers need not park); the
            # walk verifies it before the drain can finish, and a wrong
            # guess is repaired through the ordinary reopen path.
            repl = (r, t.ckey, ntid)
            lst[idx] = repl
            entry_r[nslot] = r
            ready[ntid] = r
            start[ntid] = s_old
            end[ntid] = e_old
            unsettled[nslot] = 0
            marks = touched.get(d)
            if marks is None:
                marks = touched[d] = set()
            marks.add(repl)
        else:
            row = dels.get(d)
            if row is None:
                row = dels[d] = []
            row.append((r, t.ckey, rtid))
    for d, entries in dels.items():
        lst = order.get(d)
        if lst is None:
            _giveup("del-locate")
            return 0, 0, False
        marks = touched.get(d)
        if marks is None:
            marks = touched[d] = set()
        if len(entries) > max(8, len(lst) // 16):
            # Bulk detach: one membership filter, marking the first
            # survivor after every dropped run.
            drop = set(entries)
            kept = []
            found = 0
            gap = False
            for x in lst:
                if x in drop:
                    found += 1
                    gap = True
                else:
                    if gap:
                        marks.add(x)
                        fs = slot_of.get(x[2])
                        if fs is not None:
                            unsettled[fs] = 1
                        gap = False
                    kept.append(x)
            if found != len(drop):
                _giveup("bulk-detach")
                return 0, 0, False
            order[d] = kept
        else:
            entries.sort(reverse=True)
            for entry in entries:
                idx = bisect_left(lst, entry)
                if idx >= len(lst) or lst[idx] != entry:
                    _giveup("del-locate")
                    return 0, 0, False
                del lst[idx]
                if idx < len(lst):
                    fe = lst[idx]
                    marks.add(fe)
                    fs = slot_of.get(fe[2])
                    if fs is not None:
                        unsettled[fs] = 1

    # ---- repair rounds ---------------------------------------------------
    in_open = bytearray(ns)  # membership filter for the next ready front
    recomputed = bytearray(ns)  # unique-slot membership for the stats
    waiters: dict[int, list] = {}  # pred slot -> slots parked on its settle
    rec_count = 0
    skips = 0
    visits = 0
    budget = 16 * arr.num_live + 64
    # Parking follows the *stale* device order, so -- exactly like the
    # scalar engine -- the gate discipline can transiently deadlock on
    # crossed chain positions.  When a round settles nothing, a *force*
    # round releases every parked task and drops the ordering gates:
    # wrong values written against stale inputs are repaired by their
    # writers reopening the readers, so the fixed point is unaffected.
    force = False
    while open_ or touched or waiters:
        progress = 0
        # -- ready front: re-derive ready times, relocate entries ----------
        work = open_
        open_ = set()
        for slot in work:
            in_open[slot] = 0
        for slot in work:
            visits += 1
            r = 0.0
            gate = -1
            for p in all_ins[slot]:
                pe = end.get(tids_a[p])
                if pe is None or (unsettled[p] and not force):
                    gate = p
                    break
                if pe > r:
                    r = pe
            if gate >= 0:
                row = waiters.get(gate)
                if row is None:
                    waiters[gate] = [slot]
                else:
                    row.append(slot)
                continue
            pend_r[slot] = 0
            tid = tids_a[slot]
            ck = ckeys[slot]
            d = dev[slot]
            er = entry_r.get(slot)
            if er is None:
                er = ready.get(tid)
            marks = touched.get(d)
            if marks is None:
                marks = touched[d] = set()
            if er == r and er is not None:
                ready[tid] = r
                marks.add((r, ck, tid))  # verify (start, end) in place
            elif er is None:
                # First placement of a new task.
                lst = order.get(d)
                if lst is None:
                    lst = order[d] = []
                entry = (r, ck, tid)
                j = bisect_left(lst, entry)
                lst.insert(j, entry)
                entry_r[slot] = r
                ready[tid] = r
                progress += 1
                marks.add(entry)
                if j + 1 < len(lst):
                    fe = lst[j + 1]  # displaced follower: new preTask
                    marks.add(fe)
                    fs = slot_of.get(fe[2])
                    if fs is not None:
                        unsettled[fs] = 1
            else:
                # Relocate: the entry's sort key moved.
                lst = order.get(d)
                old_entry = (er, ck, tid)
                idx = bisect_left(lst, old_entry) if lst else -1
                if idx < 0 or idx >= len(lst) or lst[idx] != old_entry:
                    _giveup("reloc-locate")
                    return rec_count, skips, False
                del lst[idx]
                if idx < len(lst):
                    fe = lst[idx]  # follower at the vacated position
                    marks.add(fe)
                    fs = slot_of.get(fe[2])
                    if fs is not None:
                        unsettled[fs] = 1
                entry = (r, ck, tid)
                j = bisect_left(lst, entry)
                lst.insert(j, entry)
                entry_r[slot] = r
                ready[tid] = r
                progress += 1
                marks.add(entry)
                if j + 1 < len(lst):
                    fe = lst[j + 1]  # follower at the new position
                    marks.add(fe)
                    fs = slot_of.get(fe[2])
                    if fs is not None:
                        unsettled[fs] = 1

        # -- chain re-scan front: walk-on-change from touched positions ----
        work_t = touched
        touched = {}
        for d, entries in work_t.items():
            lst = order.get(d)
            if not lst:
                continue
            n = len(lst)
            idxs = []
            for entry in entries:
                i = bisect_left(lst, entry)
                if i < n and lst[i] == entry:
                    idxs.append(i)
                # A stale mark (its entry relocated this round) is
                # dropped: the relocation re-marked the new entry.
            idxs.sort()
            last = -1
            for i0 in idxs:
                if i0 <= last:
                    continue  # a previous walk already covered it
                i = i0
                if i > 0:
                    pslot = slot_of.get(lst[i - 1][2])
                    if pslot is not None and unsettled[pslot] and not force:
                        # Chain predecessor pending rewrite: its own
                        # settle either walks on into this position or
                        # leaves the deferred mark for the next round.
                        nm = touched.get(d)
                        if nm is None:
                            nm = touched[d] = set()
                        nm.add(lst[i])
                        continue
                    prev_e = end.get(lst[i - 1][2])
                else:
                    prev_e = 0.0
                streak = 0
                while i < n:
                    if prev_e is None:
                        # Chain predecessor not yet settled (a pending
                        # new task): revisit once it lands.
                        nm = touched.get(d)
                        if nm is None:
                            nm = touched[d] = set()
                        nm.add(lst[i])
                        break
                    if streak >= fat and np is not None and n - i >= _VEC_MIN:
                        res = _chain_sweep(
                            np, lst, i, min(n, i + _SWEEP_CHUNK), prev_e,
                            exe, slot_of, start, end, all_outs, in_open,
                            open_, recomputed, unsettled,
                            pend_r, waiters, force,
                        )
                        if res is None:
                            _giveup("sweep-stale")
                            return rec_count, skips, False
                        i2, prev_e, rc_add, verified = res
                        rec_count += rc_add
                        progress += i2 - i
                        if verified:
                            progress += 1
                            skips += 1
                            last = i2
                            break
                        if i2 > i:
                            last = i2 - 1
                            i = i2
                            continue
                        streak = 0  # entry at i defers: scalar step handles it
                    visits += 1
                    r_i = lst[i][0]
                    tid_i = lst[i][2]
                    slot_i = slot_of.get(tid_i)
                    if slot_i is None:
                        _giveup("walk-stale")
                        return rec_count, skips, False
                    if pend_r[slot_i] and not force:
                        # Ready re-derivation pending: writing (start,
                        # end) now would be premature.  Revisit once the
                        # ready front settles (or relocates) the entry.
                        nm = touched.get(d)
                        if nm is None:
                            nm = touched[d] = set()
                        nm.add(lst[i])
                        break
                    s = prev_e if prev_e > r_i else r_i
                    e = s + exe[slot_i]
                    if start.get(tid_i) == s and end.get(tid_i) == e:
                        # Branch termination: nothing downstream of this
                        # chain can read a different value through it.
                        skips += 1
                        last = i
                        progress += 1
                        unsettled[slot_i] = 0
                        ws = waiters.pop(slot_i, None)
                        if ws is not None:
                            for x in ws:
                                if not in_open[x]:
                                    in_open[x] = 1
                                    open_.add(x)
                        break
                    start[tid_i] = s
                    end[tid_i] = e
                    progress += 1
                    if not recomputed[slot_i]:
                        recomputed[slot_i] = 1
                        rec_count += 1
                    for nxt in all_outs[slot_i]:
                        unsettled[nxt] = 1
                        pend_r[nxt] = 1
                        if not in_open[nxt]:
                            in_open[nxt] = 1
                            open_.add(nxt)
                    unsettled[slot_i] = 0
                    ws = waiters.pop(slot_i, None)
                    if ws is not None:
                        for x in ws:
                            if not in_open[x]:
                                in_open[x] = 1
                                open_.add(x)
                    last = i
                    prev_e = e
                    streak += 1
                    i += 1

        if visits > budget:
            _giveup("budget")
            return rec_count, skips, False
        if force:
            if progress == 0:
                # A full force round settled nothing: a genuine
                # dependency cycle (construction bug), not transient
                # staleness.
                _giveup("stuck")
                return rec_count, skips, False
            # One-round pulse: unlike the scalar engine (whose heap
            # keeps even force rounds in time order), the open set is
            # unordered, so staying forced degenerates into chaotic
            # iteration.  The pulse repairs the stale chain positions
            # the deadlock hinged on; gated rounds then converge.
            force = False
        elif not open_ and progress == 0 and (touched or waiters):
            force = True
            for row in waiters.values():
                for x in row:
                    if not in_open[x]:
                        in_open[x] = 1
                        open_.add(x)
            waiters.clear()
    return rec_count, skips, True


# Chunk length for the vectorized chain sweep: bounds how far past the
# live front a sweep computes (and gathers old values) before checking
# whether the change has already died out.
_SWEEP_CHUNK = 256

# Occupancy-routing bound for the front engine: a non-contact splice
# whose cut-time suffix holds more than this many chain entries is
# declined to the scalar heap engine (see ``propagate_drain``).
PROPAGATE_CONE_LIMIT = 256

LAST_GIVEUP = None


def _giveup(tag):
    global LAST_GIVEUP
    LAST_GIVEUP = tag


def _chain_sweep(
    np, lst, i, j, prev_e, exe, slot_of, start, end,
    all_outs, in_open, open_, recomputed, unsettled, pend_r, waiters,
    force=False,
):
    """Vectorized busy-segment re-scan of chain entries ``lst[i:j]``.

    Busy runs (no idle gap: each ready time is at or before the prior
    end) satisfy ``end[k] = end[k-1] + exe[k]`` -- a left fold that
    ``np.add.accumulate`` evaluates in exactly the scalar order, so the
    floats are bit-identical.  The sweep guesses the whole remaining
    chunk is one busy run, splits at the first idle gap the guess
    reveals, and re-folds from there.

    Writes ``start``/``end`` for every entry up to the first one whose
    pair re-derives unchanged (branch termination), reopening the data
    successors of each written entry.  Returns ``(stop, prev_e,
    rec_add, verified)``: ``stop`` is the index after the last written
    entry, ``prev_e`` the end carried into a continuation, ``verified``
    whether the entry at ``stop`` re-derived unchanged.  ``None``
    signals a stale entry (drift).
    """
    seg = lst[i:j]
    tds = [x[2] for x in seg]
    sl = []
    for t in tds:
        s_ = slot_of.get(t)
        if s_ is None:
            return None
        if pend_r[s_] and not force:
            # Cap the segment before the first entry whose ready is
            # still pending; the caller's scalar step defers it.
            break
        sl.append(s_)
    m = len(sl)
    if m == 0:
        return i, prev_e, 0, False
    del seg[m:]
    del tds[m:]
    r_arr = np.fromiter((x[0] for x in seg), np.float64, count=m)
    x_arr = np.frombuffer(exe, dtype=np.float64)[np.array(sl, dtype=np.int64)]
    s_arr = np.empty(m)
    e_arr = np.empty(m)
    k0 = 0
    ep = prev_e
    while k0 < m:
        r0 = r_arr[k0]
        s0 = r0 if r0 > ep else ep
        acc = x_arr[k0:].copy()
        acc[0] += s0
        np.add.accumulate(acc, out=acc)
        viol = np.flatnonzero(r_arr[k0 + 1 :] > acc[:-1])
        v = k0 + 1 + int(viol[0]) if viol.size else m
        e_arr[k0:v] = acc[: v - k0]
        s_arr[k0] = s0
        if v > k0 + 1:
            # Inside a busy run each start is exactly the prior end.
            s_arr[k0 + 1 : v] = acc[: v - k0 - 1]
        ep = float(acc[v - k0 - 1])
        k0 = v
    s_l = s_arr.tolist()
    e_l = e_arr.tolist()
    sget, eget = start.get, end.get
    stop = -1
    for k in range(m):
        t = tds[k]
        if sget(t) == s_l[k] and eget(t) == e_l[k]:
            stop = k
            break
    w = m if stop < 0 else stop
    rec_add = 0
    if w:
        start.update(zip(tds[:w], s_l[:w]))
        end.update(zip(tds[:w], e_l[:w]))
        for k in range(w):
            s_ = sl[k]
            if not recomputed[s_]:
                recomputed[s_] = 1
                rec_add += 1
            unsettled[s_] = 0
            ws = waiters.pop(s_, None)
            if ws is not None:
                for x in ws:
                    if not in_open[x]:
                        in_open[x] = 1
                        open_.add(x)
            for nxt in all_outs[s_]:
                unsettled[nxt] = 1
                pend_r[nxt] = 1
                if not in_open[nxt]:
                    in_open[nxt] = 1
                    open_.add(nxt)
    if stop >= 0:
        # The entry at ``stop`` re-derived unchanged: it settles too.
        s_ = sl[stop]
        unsettled[s_] = 0
        ws = waiters.pop(s_, None)
        if ws is not None:
            for x in ws:
                if not in_open[x]:
                    in_open[x] = 1
                    open_.add(x)
        return i + stop, 0.0, rec_add, True
    return i + m, float(e_l[-1]), rec_add, False


def _drain(
    heap,
    arr,
    indeg,
    slot_ready,
    t_cut,
    ready,
    start,
    end,
    order,
    dev_last_end,
    makespan,
):
    """Hybrid level-batched heap drain shared by the full and delta kernels.

    ``indeg``/``slot_ready`` are dense per-slot lists (scratch, consumed).
    Returns ``(scheduled, makespan, ok)``.
    """
    np = _np
    exe, dev, rank, tids, ckeys = arr.exe, arr.dev, arr.rank, arr.tid, arr.ckey
    all_outs = arr.outs
    pop = heapq.heappop
    push = heapq.heappush
    fat = FAT_RUN
    scheduled = 0
    prev_r = float("-inf")
    streak = 0
    while heap:
        r, rk, slot = pop(heap)
        if r < t_cut:
            return scheduled, makespan, False
        tid = tids[slot]
        d = dev[slot]
        s = dev_last_end.get(d, 0.0)
        if r > s:
            s = r
        e = s + exe[slot]
        ready[tid] = r
        start[tid] = s
        end[tid] = e
        dev_last_end[d] = e
        if e > makespan:
            makespan = e
        entry = (r, ckeys[slot], tid)
        lst = order.get(d)
        if lst is None:
            order[d] = [entry]
        else:
            lst.append(entry)
        scheduled += 1
        for nxt in all_outs[slot]:
            if e > slot_ready[nxt]:
                slot_ready[nxt] = e
            v = indeg[nxt] - 1
            indeg[nxt] = v
            if v == 0:
                push(heap, (slot_ready[nxt], rank[nxt], nxt))
        if r != prev_r:
            prev_r = r
            streak = 1
            continue
        streak += 1
        if streak != fat or not heap or heap[0][0] != r:
            continue
        # A fat equal-ready level: collect its queued remainder.
        rks = []
        sls = []
        positive = True
        while heap and heap[0][0] == r:
            _, rk2, s2 = pop(heap)
            rks.append(rk2)
            sls.append(s2)
            if positive and exe[s2] <= 0.0:
                positive = False
        if positive and len(sls) >= _VEC_MIN:
            # No member can schedule an equal-ready successor (positive
            # exe pushes strictly past r), so the collected batch is the
            # complete remaining level: schedule it wholesale.
            scheduled += len(sls)
            m = _vector_step(
                np, r, sls, arr, indeg, slot_ready,
                ready, start, end, order, dev_last_end, heap, push,
            )
            if m > makespan:
                makespan = m
            continue
        # Scalar merge-drain: a zero-exe member can schedule an
        # equal-ready successor mid-run, so merge the collected batch
        # against the heap by (rank, slot) to keep the global pop order
        # exact.
        for s3 in _merge_run(heap, pop, r, rks, sls):
            tid = tids[s3]
            d = dev[s3]
            s = dev_last_end.get(d, 0.0)
            if r > s:
                s = r
            e = s + exe[s3]
            ready[tid] = r
            start[tid] = s
            end[tid] = e
            dev_last_end[d] = e
            if e > makespan:
                makespan = e
            entry = (r, ckeys[s3], tid)
            lst = order.get(d)
            if lst is None:
                order[d] = [entry]
            else:
                lst.append(entry)
            scheduled += 1
            for nxt in all_outs[s3]:
                if e > slot_ready[nxt]:
                    slot_ready[nxt] = e
                v = indeg[nxt] - 1
                indeg[nxt] = v
                if v == 0:
                    push(heap, (slot_ready[nxt], rank[nxt], nxt))
    return scheduled, makespan, True


def _merge_run(heap, pop, r, rks, sls):
    """Yield a collected batch merged with same-ready heap arrivals.

    Lazy on purpose: the caller's loop body pushes successors before
    advancing, so each step sees any equal-ready task a zero-exe member
    just scheduled and interleaves it in exact ``(rank, slot)`` order.
    """
    n = len(sls)
    i = 0
    while i < n:
        if heap and heap[0][0] == r and (heap[0][1], heap[0][2]) < (rks[i], sls[i]):
            yield pop(heap)[2]
        else:
            yield sls[i]
            i += 1


def _vector_step(
    np, r, sls, arr, indeg, slot_ready,
    ready, start, end, order, dev_last_end, heap, push,
):
    """Schedule one fat equal-ready batch in bulk; returns its max end time."""
    tids, ckeys, rank = arr.tid, arr.ckey, arr.rank
    all_outs = arr.outs
    sl = np.array(sls, dtype=np.int64)
    bd = np.frombuffer(arr.dev, dtype=np.int64)[sl]
    by_dev = np.argsort(bd, kind="stable")
    ss = sl[by_dev]
    sd = bd[by_dev]
    bx = np.frombuffer(arr.exe, dtype=np.float64)[ss]
    n = len(ss)
    head = np.empty(n, bool)
    head[0] = True
    np.not_equal(sd[1:], sd[:-1], out=head[1:])
    h = np.flatnonzero(head)
    hd = sd[h].tolist()
    dl = np.fromiter(
        (dev_last_end.get(d, 0.0) for d in hd), np.float64, count=len(hd)
    )
    s_arr = np.empty(n)
    e_arr = np.empty(n)
    sh = np.maximum(r, dl)
    s_arr[h] = sh
    e_arr[h] = sh + bx[h]
    if len(h) < n:
        # Per-device chain scan: positive exe keeps every end strictly
        # past r, so each later member starts exactly at its chain
        # predecessor's end.  The carry loop adds in the scalar
        # evaluation order (left fold), preserving float identity.
        seg = np.cumsum(head) - 1
        pos = np.arange(n) - h[seg]
        for j in range(1, int(pos.max()) + 1):
            nxt = np.flatnonzero(pos == j)
            prev = e_arr[nxt - 1]
            s_arr[nxt] = prev
            e_arr[nxt] = prev + bx[nxt]
    # Bulk writeback: same dict contents and same per-device append order
    # as the scalar pops would produce.
    ss_l = ss.tolist()
    tds = [tids[x] for x in ss_l]
    ready.update(zip(tds, repeat(r)))
    start.update(zip(tds, s_arr.tolist()))
    end.update(zip(tds, e_arr.tolist()))
    entries = list(zip(repeat(r), (ckeys[x] for x in ss_l), tds))
    bounds = h.tolist()
    bounds.append(n)
    for k, d in enumerate(hd):
        lo, hi = bounds[k], bounds[k + 1]
        lst = order.get(d)
        if lst is None:
            order[d] = entries[lo:hi]
        else:
            lst.extend(entries[lo:hi])
        dev_last_end[d] = e_arr[hi - 1].item()
    # Batched ready-time maxes over the gathered CSR successor rows,
    # grouped by successor via one stable argsort -- everything O(batch
    # edges).  The scatter back is per *unique* successor.  Pushes happen
    # only once a successor's last predecessor has scheduled, so the
    # pushed ready times are final -- and positive exe guarantees they
    # land strictly after r, never inside this batch.
    rows = [all_outs[x] for x in ss_l]
    ln = np.fromiter(map(len, rows), np.int64, count=n)
    tot = int(ln.sum())
    if tot:
        succ = np.fromiter(chain.from_iterable(rows), np.int64, count=tot)
        so = np.argsort(succ, kind="stable")
        grp = succ[so]
        ev = np.repeat(e_arr, ln)[so]
        first = np.empty(tot, bool)
        first[0] = True
        np.not_equal(grp[1:], grp[:-1], out=first[1:])
        starts = np.flatnonzero(first)
        mx = np.maximum.reduceat(ev, starts)
        cnt = np.empty(len(starts), np.int64)
        np.subtract(starts[1:], starts[:-1], out=cnt[:-1])
        cnt[-1] = tot - starts[-1]
        for u, m, c in zip(
            grp[starts].tolist(), mx.tolist(), cnt.tolist()
        ):
            if m > slot_ready[u]:
                slot_ready[u] = m
            v = indeg[u] - c
            indeg[u] = v
            if v == 0:
                push(heap, (slot_ready[u], rank[u], u))
    return e_arr.max().item()
