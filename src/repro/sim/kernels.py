"""Numpy bulk kernels behind the timeline sweeps (Algorithm 1 and 2).

The reference sweeps in :mod:`~repro.sim.full_sim` and
:mod:`~repro.sim.delta_sim` pay one Python bytecode dispatch per task per
proposal.  This module batches that work where the schedule structure
allows it without changing a single output bit:

* **Level-batched heap drains** -- consecutive heap pops sharing a ready
  time form a *level*.  The drain's main loop is the reference pop loop
  plus a two-op streak tracker, so thin levels (narrow graph regions,
  the common case) pay essentially nothing; once a streak of equal-ready
  pops reaches ``FAT_RUN`` the rest of the level is collected and -- when
  every member has positive execution time, so none can schedule an
  equal-ready successor -- the whole batch schedules in one vectorized
  step.  A *stable* sort by device preserves the heap's ``(rank, slot)``
  tie order inside each device, which is exactly the scalar per-device
  execution order.
* **Vectorized per-device end-time chain scans** -- within a device
  segment the first task starts at ``max(readyTime, devLastEnd)`` and
  every later one starts exactly at its chain predecessor's end
  (positive exe keeps ends strictly past the shared ready time), so the
  scan is a short carry loop of pure adds in the reference evaluation
  order; float adds and maxes reproduce the scalar results bit for bit.
* **Batched ready-time maxes** -- a batch's successor relaxation gathers
  the CSR successor rows once, groups them by successor with one stable
  argsort, and reduces each group's end-time max with
  ``np.maximum.reduceat`` -- all O(batch edges), no full-width column
  scans -- before a compact per-unique-successor scatter updates
  ``slot_ready``/``indeg`` and releases newly-ready tasks.

The delta suffix reuses the same drain without a membership test:
non-suffix slots enter with an in-degree of zero, so the first decrement
drives them negative and they can never reach the ``indeg == 0``
scheduling condition again; their ``slot_ready`` updates land in scratch
that nobody reads.  Dropping the per-edge membership probe (and the
dict-based drain state) is what makes the kernel suffix sweep cheaper
than the scalar reference even when no level is fat.

Bit-identity is the contract (the property suites in
``tests/sim/test_sim_kernels.py`` enforce it), which is what lets all
timeline algorithms keep sharing one persistent-store shard.  Setting
``REPRO_SIM_KERNELS=python`` forces the scalar reference
implementations -- the escape hatch for debugging and for environments
without numpy (where the kernels disable themselves).
"""

from __future__ import annotations

import heapq
import os
from itertools import chain, repeat

try:  # pragma: no cover - exercised via kernels_enabled() both ways
    import numpy as _np
except ImportError:  # pragma: no cover - the toolchain ships numpy
    _np = None

__all__ = ["kernels_enabled", "full_kernel", "suffix_drain", "FAT_RUN"]

# Streak length at which an equal-ready level is declared fat: after this
# many consecutive pops share a ready time, the rest of the level is
# collected and batch-scheduled.  Below this the per-call numpy dispatch
# overhead exceeds the scalar loop it replaces (measured crossover on the
# Inception/16 acceptance graphs); tests drop it to exercise the
# vectorized path on small graphs.
FAT_RUN = 48

# A collected remainder smaller than this schedules through the scalar
# merge-drain even when all-positive -- a vectorized step's fixed
# dispatch overhead needs this many tasks to amortize.
_VEC_MIN = 32


def kernels_enabled() -> bool:
    """Whether the numpy kernels back the sweeps (checked per call)."""
    if _np is None:
        return False
    return os.environ.get("REPRO_SIM_KERNELS", "").strip().lower() != "python"


def full_kernel(tg):
    """Algorithm 1 on the numpy kernels; bit-identical to ``full_simulate``."""
    from .full_sim import Timeline

    np = _np
    tl = Timeline()
    arr = tg.arrays
    ns = arr.num_slots
    total = arr.num_live
    if total == 0:
        return tl
    # Vectorized init: in-degrees from the CSR predecessor row lengths,
    # the frontier found in one masked scan (free slots have cleared
    # rows, so the live mask keeps them out of the initial heap).
    ind_np = np.fromiter(map(len, arr.ins), np.int64, count=ns)
    live = np.frombuffer(arr.tid, dtype=np.int64) != -1
    frontier = np.flatnonzero(live & (ind_np == 0))
    rank_np = np.frombuffer(arr.rank, dtype=np.int64)
    heap = list(zip(repeat(0.0), rank_np[frontier].tolist(), frontier.tolist()))
    heapq.heapify(heap)
    scheduled, makespan, _ = _drain(
        heap,
        arr,
        ind_np.tolist(),
        [0.0] * ns,
        float("-inf"),
        tl.ready,
        tl.start,
        tl.end,
        tl.device_order,
        {},
        0.0,
    )
    if scheduled != total:
        raise RuntimeError(
            f"task graph has a cycle: scheduled {scheduled} of {total} tasks"
        )
    tl.makespan = makespan
    return tl


def suffix_drain(
    tg,
    suffix_slots,
    t_cut,
    ready,
    start,
    end,
    order,
    dev_last_end,
    makespan,
):
    """Algorithm 1 over a delta suffix on the numpy kernels.

    Same contract as the scalar suffix sweep in ``delta_simulate``:
    repairs the timeline dicts in place past ``t_cut``.  Returns
    ``(scheduled, makespan, ok)``; ``ok`` is False when a pop lands
    before the cut (the caller's prefix-safety fallback).
    """
    arr = tg.arrays
    rank, tids = arr.rank, arr.tid
    all_ins = arr.ins
    ns = len(tids)
    memb = bytearray(ns)
    for slot in suffix_slots:
        memb[slot] = 1
    indeg = [0] * ns
    slot_ready = [0.0] * ns
    heap: list[tuple[float, int, int]] = []
    for slot in suffix_slots:
        n = 0
        est = 0.0
        for p in all_ins[slot]:
            if memb[p]:
                n += 1
            else:
                pe = end[tids[p]]  # fixed predecessor: final value
                if pe > est:
                    est = pe
        indeg[slot] = n
        slot_ready[slot] = est
        if n == 0:
            heap.append((est, rank[slot], slot))
    heapq.heapify(heap)
    return _drain(
        heap,
        arr,
        indeg,
        slot_ready,
        t_cut,
        ready,
        start,
        end,
        order,
        dev_last_end,
        makespan,
    )


def _drain(
    heap,
    arr,
    indeg,
    slot_ready,
    t_cut,
    ready,
    start,
    end,
    order,
    dev_last_end,
    makespan,
):
    """Hybrid level-batched heap drain shared by the full and delta kernels.

    ``indeg``/``slot_ready`` are dense per-slot lists (scratch, consumed).
    Returns ``(scheduled, makespan, ok)``.
    """
    np = _np
    exe, dev, rank, tids, ckeys = arr.exe, arr.dev, arr.rank, arr.tid, arr.ckey
    all_outs = arr.outs
    pop = heapq.heappop
    push = heapq.heappush
    fat = FAT_RUN
    scheduled = 0
    prev_r = float("-inf")
    streak = 0
    while heap:
        r, rk, slot = pop(heap)
        if r < t_cut:
            return scheduled, makespan, False
        tid = tids[slot]
        d = dev[slot]
        s = dev_last_end.get(d, 0.0)
        if r > s:
            s = r
        e = s + exe[slot]
        ready[tid] = r
        start[tid] = s
        end[tid] = e
        dev_last_end[d] = e
        if e > makespan:
            makespan = e
        entry = (r, ckeys[slot], tid)
        lst = order.get(d)
        if lst is None:
            order[d] = [entry]
        else:
            lst.append(entry)
        scheduled += 1
        for nxt in all_outs[slot]:
            if e > slot_ready[nxt]:
                slot_ready[nxt] = e
            v = indeg[nxt] - 1
            indeg[nxt] = v
            if v == 0:
                push(heap, (slot_ready[nxt], rank[nxt], nxt))
        if r != prev_r:
            prev_r = r
            streak = 1
            continue
        streak += 1
        if streak != fat or not heap or heap[0][0] != r:
            continue
        # A fat equal-ready level: collect its queued remainder.
        rks = []
        sls = []
        positive = True
        while heap and heap[0][0] == r:
            _, rk2, s2 = pop(heap)
            rks.append(rk2)
            sls.append(s2)
            if positive and exe[s2] <= 0.0:
                positive = False
        if positive and len(sls) >= _VEC_MIN:
            # No member can schedule an equal-ready successor (positive
            # exe pushes strictly past r), so the collected batch is the
            # complete remaining level: schedule it wholesale.
            scheduled += len(sls)
            m = _vector_step(
                np, r, sls, arr, indeg, slot_ready,
                ready, start, end, order, dev_last_end, heap, push,
            )
            if m > makespan:
                makespan = m
            continue
        # Scalar merge-drain: a zero-exe member can schedule an
        # equal-ready successor mid-run, so merge the collected batch
        # against the heap by (rank, slot) to keep the global pop order
        # exact.
        for s3 in _merge_run(heap, pop, r, rks, sls):
            tid = tids[s3]
            d = dev[s3]
            s = dev_last_end.get(d, 0.0)
            if r > s:
                s = r
            e = s + exe[s3]
            ready[tid] = r
            start[tid] = s
            end[tid] = e
            dev_last_end[d] = e
            if e > makespan:
                makespan = e
            entry = (r, ckeys[s3], tid)
            lst = order.get(d)
            if lst is None:
                order[d] = [entry]
            else:
                lst.append(entry)
            scheduled += 1
            for nxt in all_outs[s3]:
                if e > slot_ready[nxt]:
                    slot_ready[nxt] = e
                v = indeg[nxt] - 1
                indeg[nxt] = v
                if v == 0:
                    push(heap, (slot_ready[nxt], rank[nxt], nxt))
    return scheduled, makespan, True


def _merge_run(heap, pop, r, rks, sls):
    """Yield a collected batch merged with same-ready heap arrivals.

    Lazy on purpose: the caller's loop body pushes successors before
    advancing, so each step sees any equal-ready task a zero-exe member
    just scheduled and interleaves it in exact ``(rank, slot)`` order.
    """
    n = len(sls)
    i = 0
    while i < n:
        if heap and heap[0][0] == r and (heap[0][1], heap[0][2]) < (rks[i], sls[i]):
            yield pop(heap)[2]
        else:
            yield sls[i]
            i += 1


def _vector_step(
    np, r, sls, arr, indeg, slot_ready,
    ready, start, end, order, dev_last_end, heap, push,
):
    """Schedule one fat equal-ready batch in bulk; returns its max end time."""
    tids, ckeys, rank = arr.tid, arr.ckey, arr.rank
    all_outs = arr.outs
    sl = np.array(sls, dtype=np.int64)
    bd = np.frombuffer(arr.dev, dtype=np.int64)[sl]
    by_dev = np.argsort(bd, kind="stable")
    ss = sl[by_dev]
    sd = bd[by_dev]
    bx = np.frombuffer(arr.exe, dtype=np.float64)[ss]
    n = len(ss)
    head = np.empty(n, bool)
    head[0] = True
    np.not_equal(sd[1:], sd[:-1], out=head[1:])
    h = np.flatnonzero(head)
    hd = sd[h].tolist()
    dl = np.fromiter(
        (dev_last_end.get(d, 0.0) for d in hd), np.float64, count=len(hd)
    )
    s_arr = np.empty(n)
    e_arr = np.empty(n)
    sh = np.maximum(r, dl)
    s_arr[h] = sh
    e_arr[h] = sh + bx[h]
    if len(h) < n:
        # Per-device chain scan: positive exe keeps every end strictly
        # past r, so each later member starts exactly at its chain
        # predecessor's end.  The carry loop adds in the scalar
        # evaluation order (left fold), preserving float identity.
        seg = np.cumsum(head) - 1
        pos = np.arange(n) - h[seg]
        for j in range(1, int(pos.max()) + 1):
            nxt = np.flatnonzero(pos == j)
            prev = e_arr[nxt - 1]
            s_arr[nxt] = prev
            e_arr[nxt] = prev + bx[nxt]
    # Bulk writeback: same dict contents and same per-device append order
    # as the scalar pops would produce.
    ss_l = ss.tolist()
    tds = [tids[x] for x in ss_l]
    ready.update(zip(tds, repeat(r)))
    start.update(zip(tds, s_arr.tolist()))
    end.update(zip(tds, e_arr.tolist()))
    entries = list(zip(repeat(r), (ckeys[x] for x in ss_l), tds))
    bounds = h.tolist()
    bounds.append(n)
    for k, d in enumerate(hd):
        lo, hi = bounds[k], bounds[k + 1]
        lst = order.get(d)
        if lst is None:
            order[d] = entries[lo:hi]
        else:
            lst.extend(entries[lo:hi])
        dev_last_end[d] = e_arr[hi - 1].item()
    # Batched ready-time maxes over the gathered CSR successor rows,
    # grouped by successor via one stable argsort -- everything O(batch
    # edges).  The scatter back is per *unique* successor.  Pushes happen
    # only once a successor's last predecessor has scheduled, so the
    # pushed ready times are final -- and positive exe guarantees they
    # land strictly after r, never inside this batch.
    rows = [all_outs[x] for x in ss_l]
    ln = np.fromiter(map(len, rows), np.int64, count=n)
    tot = int(ln.sum())
    if tot:
        succ = np.fromiter(chain.from_iterable(rows), np.int64, count=tot)
        so = np.argsort(succ, kind="stable")
        grp = succ[so]
        ev = np.repeat(e_arr, ln)[so]
        first = np.empty(tot, bool)
        first[0] = True
        np.not_equal(grp[1:], grp[:-1], out=first[1:])
        starts = np.flatnonzero(first)
        mx = np.maximum.reduceat(ev, starts)
        cnt = np.empty(len(starts), np.int64)
        np.subtract(starts[1:], starts[:-1], out=cnt[:-1])
        cnt[-1] = tot - starts[-1]
        for u, m, c in zip(
            grp[starts].tolist(), mx.tolist(), cnt.tolist()
        ):
            if m > slot_ready[u]:
                slot_ready[u] = m
            v = indeg[u] - c
            indeg[u] = v
            if v == 0:
                push(heap, (slot_ready[u], rank[u], u))
    return e_arr.max().item()
