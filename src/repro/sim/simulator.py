"""Simulator facade: a task graph plus its live timeline.

Bundles the pieces the execution optimizer needs: build once, then
:meth:`Simulator.reconfigure` one operation at a time.  Four timeline
algorithms share the same incremental task-graph update:

``"auto"`` (default)
    per-proposal routing, cheapest-first.  A proposal whose config equals
    the operation's current config has an empty change cone: the splice
    would rebuild the exact task structure it removes, so the router
    skips the splice *and* the repair outright (``DeltaStats.auto_noop``)
    -- the common case in small per-op config spaces, where random
    proposals regularly collide with the incumbent.  Otherwise a
    pre-flight cone estimator
    (:func:`~repro.sim.propagate.preflight_route`) predicts whether the
    splice's timeline impact is localized -- every replacement task
    structurally identical (ckey, exe, device) to a removed one -- and
    dispatches to ``"propagate"`` when so (``DeltaStats.auto_propagate``).
    Dense mutations are sized *before* any repair runs, against the
    per-device occupancy summaries ``TaskArrays.dev_count`` keeps
    incrementally across splices: the predicted repair cone (tasks at or
    after the cut time, one bisect per occupied chain --
    :func:`~repro.sim.propagate.predicted_cone`) routes to ``"delta"``
    when under half the graph (``auto_delta``), else straight to the
    vectorized full sweep (``auto_full``) without paying the cut-time
    machinery first.  Every decision lands in
    ``DeltaStats.route_counts`` and the predicted-vs-actual cone sizes
    in ``predicted_cone_tasks`` / ``actual_cone_tasks`` /
    ``cone_abs_error``, and the telemetry rides through
    ``SearchTrace`` into the bench grid and ``repro.exp`` trial rows;
``"delta"``
    the cut-time incremental repair (Algorithm 2, conservative variant);
``"propagate"``
    true change propagation (:mod:`repro.sim.propagate`): walks only
    actually-changed tasks, skips unaffected parallel branches, and
    falls back behind a cascade guard (``propagate_guard_frac``) to the
    cut-time algorithm (pre-flight) or a full re-simulation (mid-flight);
``"full"``
    re-simulate from scratch (Algorithm 1) -- how the paper isolates the
    simulation algorithms in Table 4 and Figure 12.

All four produce bit-identical timelines for every reachable state
(property-tested at ``tol=0``), so the choice is pure throughput.
"""

from __future__ import annotations

from repro.ir.graph import OperatorGraph
from repro.machine.topology import DeviceTopology
from repro.profiler.profiler import OpProfiler
from repro.sim.delta_sim import DeltaStats, delta_simulate
from repro.sim.full_sim import Timeline, full_simulate
from repro.sim.metrics import IterationMetrics, compute_metrics
from repro.sim.propagate import (
    DEFAULT_GUARD_FRAC,
    preflight_route,
    propagate_simulate,
)
from repro.sim.taskgraph import TaskGraph
from repro.soap.config import ParallelConfig
from repro.soap.strategy import Strategy

__all__ = ["ALGORITHMS", "Simulator", "simulate_strategy"]

#: The valid ``algorithm=`` names, in "most incremental first" order
#: (``auto`` routes between the two incremental algorithms per proposal).
ALGORITHMS = ("auto", "propagate", "delta", "full")


class Simulator:
    """Live (task graph, timeline) pair under incremental reconfiguration."""

    def __init__(
        self,
        graph: OperatorGraph,
        topology: DeviceTopology,
        strategy: Strategy,
        profiler: OpProfiler | None = None,
        training: bool = True,
        algorithm: str = "auto",
        pool_snapshots: bool = True,
        propagate_guard_frac: float = DEFAULT_GUARD_FRAC,
    ):
        if algorithm not in ALGORITHMS:
            raise ValueError(
                f"unknown simulation algorithm {algorithm!r}; valid: {ALGORITHMS}"
            )
        self.graph = graph
        self.topology = topology
        self.profiler = profiler or OpProfiler()
        self.algorithm = algorithm
        self.propagate_guard_frac = propagate_guard_frac
        self.task_graph = TaskGraph(graph, topology, strategy, self.profiler, training=training)
        self.timeline: Timeline = full_simulate(self.task_graph)
        self.delta_stats = DeltaStats()
        self.reverts = 0  # snapshot restores that replaced an undo simulation
        self._pending: Timeline | None = None
        self._pending_noop = False  # pending proposal was an identity no-op
        # Snapshot pooling (delta algorithm only): one scratch Timeline is
        # recycled through the propose/commit/revert cycle instead of
        # allocating a fresh four-dict copy per in-flight proposal --
        # the remaining constant factor of the snapshot-undo scheme.
        # ``pool_snapshots=False`` restores per-proposal allocation (the
        # micro-benchmark A/B switch; results are identical either way).
        self.pool_snapshots = pool_snapshots
        self._scratch: Timeline | None = None

    @property
    def cost(self) -> float:
        """Predicted per-iteration execution time in microseconds."""
        return self.timeline.makespan

    @property
    def strategy(self) -> Strategy:
        return self.task_graph.strategy

    def _identity(self, op_id: int, cfg: ParallelConfig) -> bool:
        """Whether ``cfg`` equals ``op_id``'s current config (empty cone).

        Group members always share one config, so the splice would remove
        and rebuild structurally identical tasks and the repaired timeline
        is provably the current one.  Only the auto router may act on
        this: the named algorithms run their machinery unconditionally so
        they stay honest benchmarking/reference configurations.
        """
        return self.algorithm == "auto" and cfg == self.task_graph.strategy[op_id]

    def _repair(self, removed: dict, dirty: set[int]) -> None:
        """Bring the timeline up to date after a task-graph splice."""
        algo = self.algorithm
        st = self.delta_stats
        predicted = None
        if algo == "auto":
            algo, predicted = preflight_route(
                self.task_graph,
                self.timeline,
                removed,
                dirty,
                guard_frac=self.propagate_guard_frac,
            )
            if algo == "propagate":
                st.auto_propagate += 1
            elif algo == "full":
                st.auto_full += 1
            else:
                st.auto_delta += 1
            st.route_counts[algo] = st.route_counts.get(algo, 0) + 1
            resim0 = st.tasks_resimulated
        if algo == "delta":
            delta_simulate(self.task_graph, self.timeline, removed, dirty, st)
        elif algo == "propagate":
            propagate_simulate(
                self.task_graph,
                self.timeline,
                removed,
                dirty,
                st,
                guard_frac=self.propagate_guard_frac,
            )
        elif predicted is not None:
            # Auto-routed full sweep: a routing destination, not a
            # fallback -- the occupancy cone saturated the graph, so the
            # vectorized Algorithm 1 is predicted cheapest outright.
            # Accounted like the saturation handoff it pre-empts.
            st.invocations += 1
            st.tasks_total += len(self.task_graph.tasks)
            st.tasks_resimulated += len(self.task_graph.tasks)
            self.timeline = full_simulate(self.task_graph)
        else:
            self.timeline = full_simulate(self.task_graph)
        if predicted is not None:
            actual = st.tasks_resimulated - resim0
            st.predicted_cone_tasks += predicted
            st.actual_cone_tasks += actual
            st.cone_abs_error += abs(predicted - actual)

    @property
    def _incremental(self) -> bool:
        """Whether the algorithm repairs the timeline in place."""
        return self.algorithm != "full"

    def reconfigure(self, op_id: int, cfg: ParallelConfig) -> float:
        """Apply one configuration change; returns the new cost (us)."""
        if self._identity(op_id, cfg):
            st = self.delta_stats
            st.auto_noop += 1
            st.route_counts["noop"] = st.route_counts.get("noop", 0) + 1
            return self.timeline.makespan
        removed, dirty = self.task_graph.replace_config(op_id, cfg)
        self._repair(removed, dirty)
        return self.timeline.makespan

    # -- speculative reconfiguration ---------------------------------------
    def propose(self, op_id: int, cfg: ParallelConfig) -> float:
        """Speculatively apply one configuration change; returns the cost.

        Must be resolved with :meth:`commit` or :meth:`revert` before the
        next proposal.  ``revert`` restores the exact pre-proposal state
        from a snapshot -- no re-simulation -- which halves the simulator
        work of a rejected MCMC proposal compared to apply-then-undo.
        """
        if self._pending is not None:
            raise RuntimeError("previous proposal not resolved (commit or revert first)")
        if self._identity(op_id, cfg):
            # Empty change cone: nothing to snapshot, splice, or repair.
            # The pending marker keeps propose/commit/revert pairing
            # intact; resolution is a flag flip either way.
            self.delta_stats.auto_noop += 1
            self.delta_stats.route_counts["noop"] = (
                self.delta_stats.route_counts.get("noop", 0) + 1
            )
            self._pending = self.timeline
            self._pending_noop = True
            return self.timeline.makespan
        # The incremental algorithms (delta, propagate) repair the timeline
        # in place, so reverting needs a copy; the full algorithm builds a
        # fresh timeline and the old object can be kept as-is.  With
        # pooling on, the copy reuses the scratch timeline recycled by the
        # last commit/revert.
        if self._incremental:
            scratch, self._scratch = self._scratch, None
            saved = (
                self.timeline.copy_into(scratch)
                if scratch is not None and self.pool_snapshots
                else self.timeline.copy()
            )
        else:
            saved = self.timeline
        removed, dirty = self.task_graph.replace_config(op_id, cfg, keep_record=True)
        self._repair(removed, dirty)
        self._pending = saved
        return self.timeline.makespan

    def commit(self) -> None:
        """Adopt the pending proposal."""
        if self._pending is None:
            raise RuntimeError("no pending proposal to commit")
        if self._pending_noop:
            # Identity no-op: the "snapshot" is the live timeline itself,
            # so it must not enter the scratch pool.
            self._pending = None
            self._pending_noop = False
            return
        if self._incremental and self.pool_snapshots:
            # The unused snapshot becomes the next proposal's scratch.
            self._scratch = self._pending
        self._pending = None

    def revert(self) -> float:
        """Discard the pending proposal; returns the restored cost (us)."""
        if self._pending is None:
            raise RuntimeError("no pending proposal to revert")
        if self._pending_noop:
            # Identity no-op: no splice happened, so there is nothing to
            # undo and the live timeline is already the pre-proposal one.
            self._pending = None
            self._pending_noop = False
            self.reverts += 1
            return self.timeline.makespan
        self.task_graph.undo_last_splice()
        if self._incremental and self.pool_snapshots:
            # The discarded (repaired-in-place) timeline becomes scratch.
            self._scratch = self.timeline
        self.timeline = self._pending
        self._pending = None
        self.reverts += 1
        return self.timeline.makespan

    def metrics(self) -> IterationMetrics:
        return compute_metrics(self.task_graph, self.timeline)


def simulate_strategy(
    graph: OperatorGraph,
    topology: DeviceTopology,
    strategy: Strategy,
    profiler: OpProfiler | None = None,
    training: bool = True,
) -> IterationMetrics:
    """One-shot simulation: build, run Algorithm 1, collect metrics."""
    profiler = profiler or OpProfiler()
    tg = TaskGraph(graph, topology, strategy, profiler, training=training)
    tl = full_simulate(tg)
    return compute_metrics(tg, tl)
