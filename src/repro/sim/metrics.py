"""Aggregate metrics over a simulated iteration.

Provides the three quantities Figure 8 of the paper reports for NMT on 64
K80 GPUs: per-iteration execution time (the makespan), total data
transfers per iteration, and total task computation time per iteration --
plus per-device utilization breakdowns used by the benchmark reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.sim.full_sim import Timeline
from repro.sim.taskgraph import TaskGraph, TaskKind

__all__ = ["IterationMetrics", "compute_metrics", "throughput_samples_per_sec"]


@dataclass
class IterationMetrics:
    """One training iteration's simulated cost breakdown."""

    makespan_us: float
    total_comm_bytes: float
    total_compute_us: float
    num_tasks: int
    comm_bytes_by_label: dict[str, float] = field(default_factory=dict)
    device_busy_us: dict[int, float] = field(default_factory=dict)

    @property
    def makespan_s(self) -> float:
        return self.makespan_us / 1e6

    @property
    def total_comm_gb(self) -> float:
        return self.total_comm_bytes / 1e9

    def utilization(self, num_devices: int) -> float:
        """Mean fraction of the makespan each compute device is busy."""
        if self.makespan_us <= 0 or num_devices == 0:
            return 0.0
        busy = sum(self.device_busy_us.values())
        return busy / (self.makespan_us * num_devices)

    def row(self) -> dict[str, float]:
        """Flat dict for tabular benchmark reports."""
        return {
            "iter_time_ms": self.makespan_us / 1e3,
            "comm_GB": self.total_comm_gb,
            "compute_s": self.total_compute_us / 1e6,
            "tasks": self.num_tasks,
        }


def compute_metrics(tg: TaskGraph, tl: Timeline) -> IterationMetrics:
    """Collect iteration metrics from a task graph and its timeline.

    Aggregates over the flat :class:`~repro.sim.arrays.TaskArrays`
    columns; the ``Task`` objects are only consulted for COMM tasks'
    connection labels (the one property the arrays do not mirror).
    """
    comm_bytes = 0.0
    compute_us = 0.0
    by_label: dict[str, float] = {}
    busy: dict[int, float] = {}
    arr = tg.arrays
    exe, dev, kinds, nbytes, tids = arr.exe, arr.dev, arr.kind, arr.nbytes, arr.tid
    comm = int(TaskKind.COMM)
    for slot in range(len(tids)):
        tid = tids[slot]
        if tid == -1:
            continue
        if kinds[slot] == comm:
            nb = nbytes[slot]
            comm_bytes += nb
            conn = tg.tasks[tid].conn
            label = conn.label if conn is not None else "?"
            by_label[label] = by_label.get(label, 0.0) + nb
        else:
            e = exe[slot]
            compute_us += e
            d = dev[slot]
            busy[d] = busy.get(d, 0.0) + e
    return IterationMetrics(
        makespan_us=tl.makespan,
        total_comm_bytes=comm_bytes,
        total_compute_us=compute_us,
        num_tasks=len(tg.tasks),
        comm_bytes_by_label=by_label,
        device_busy_us=busy,
    )


def throughput_samples_per_sec(batch: int, makespan_us: float) -> float:
    """Training throughput in samples/second for one simulated iteration."""
    if makespan_us <= 0:
        return 0.0
    return batch / (makespan_us / 1e6)
