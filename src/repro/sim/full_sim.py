"""Full simulation algorithm (Algorithm 1 of the paper).

A Dijkstra-style sweep: tasks enter a global priority queue when all
predecessors have completed and are dequeued in increasing ``readyTime``
order (ties broken by the task's *canonical* key, see below).  Dequeuing
assigns ``startTime = max(readyTime, device.last.endTime)`` -- devices
process tasks FIFO by ready time (assumption A3) and begin work as soon
as inputs are available (assumption A4).

Ties are broken by :attr:`~repro.sim.taskgraph.Task.ckey`, a key derived
from the task's structural identity rather than its creation order.  Task
*ids* depend on the history of incremental reconfigurations (splices
allocate fresh ids), so id-based tie-breaking would make the simulated
makespan depend on the *path* the search took to reach a strategy.  With
canonical tie-breaking the timeline is a pure function of
``(operator graph, topology, strategy, training)`` -- the property that
the strategy-evaluation cache (:mod:`repro.search.cache`) and the
cross-worker reproducibility of parallel search
(:mod:`repro.search.parallel`) both rely on.
"""

from __future__ import annotations

import heapq
from bisect import insort

from repro.sim.taskgraph import TaskGraph

__all__ = ["Timeline", "full_simulate"]


class Timeline:
    """Simulated schedule: per-task times plus per-device execution order.

    ``device_order[d]`` is the list of ``(readyTime, ckey, tid)`` triples
    of tasks executed on device ``d``, kept sorted -- which *is* the
    execution order, because FIFO-by-ready-time with deterministic
    tie-breaking makes "sorted by (readyTime, ckey)" and "execution order"
    the same thing.  The delta simulator relies on this invariant to
    maintain the ``preTask``/``nextTask`` chains of Table 2 implicitly.
    """

    __slots__ = ("ready", "start", "end", "device_order", "makespan")

    def __init__(self) -> None:
        self.ready: dict[int, float] = {}
        self.start: dict[int, float] = {}
        self.end: dict[int, float] = {}
        self.device_order: dict[int, list[tuple[float, tuple[int, ...], int]]] = {}
        self.makespan: float = 0.0

    def copy(self) -> "Timeline":
        tl = Timeline()
        tl.ready = dict(self.ready)
        tl.start = dict(self.start)
        tl.end = dict(self.end)
        tl.device_order = {d: list(v) for d, v in self.device_order.items()}
        tl.makespan = self.makespan
        return tl

    def copy_into(self, target: "Timeline") -> "Timeline":
        """Copy this timeline's state into ``target``, reusing its storage.

        Clearing and refilling the existing dicts (and per-device lists)
        keeps their already-grown hash tables and list buffers alive, so
        a caller that snapshots on every proposal -- the MCMC speculative
        path -- recycles one scratch timeline instead of allocating four
        dicts plus a list per device each iteration.
        """
        target.ready.clear()
        target.ready.update(self.ready)
        target.start.clear()
        target.start.update(self.start)
        target.end.clear()
        target.end.update(self.end)
        stale = target.device_order.keys() - self.device_order.keys()
        for d in stale:
            del target.device_order[d]
        for d, order in self.device_order.items():
            dst = target.device_order.get(d)
            if dst is None:
                target.device_order[d] = list(order)
            else:
                dst[:] = order
        target.makespan = self.makespan
        return target

    def equals(self, other: "Timeline", tol: float = 1e-9) -> bool:
        """Structural equality up to floating-point tolerance (for tests)."""
        if set(self.end) != set(other.end):
            return False
        return all(
            abs(self.ready[t] - other.ready[t]) <= tol
            and abs(self.start[t] - other.start[t]) <= tol
            and abs(self.end[t] - other.end[t]) <= tol
            for t in self.end
        )

    def recompute_makespan(self) -> float:
        self.makespan = max(self.end.values(), default=0.0)
        return self.makespan


def full_simulate(tg: TaskGraph) -> Timeline:
    """Simulate the task graph from scratch; returns the full timeline.

    Raises ``RuntimeError`` if the task graph contains a dependency cycle
    (which would indicate a construction bug, not a user error).
    """
    tl = Timeline()
    tasks = tg.tasks
    indeg: dict[int, int] = {}
    heap: list[tuple[float, tuple[int, ...], int]] = []
    for tid, t in tasks.items():
        indeg[tid] = len(t.ins)
        if not t.ins:
            tl.ready[tid] = 0.0
            heap.append((0.0, t.ckey, tid))
    heapq.heapify(heap)

    dev_last_end: dict[int, float] = {}
    scheduled = 0
    ready = tl.ready
    start = tl.start
    end = tl.end
    order = tl.device_order
    while heap:
        r, ck, tid = heapq.heappop(heap)
        t = tasks[tid]
        s = max(r, dev_last_end.get(t.device, 0.0))
        e = s + t.exe_time
        start[tid] = s
        end[tid] = e
        dev_last_end[t.device] = e
        insort(order.setdefault(t.device, []), (r, ck, tid))
        scheduled += 1
        for nxt in t.outs:
            nr = ready.get(nxt, 0.0)
            if e > nr:
                nr = e
            ready[nxt] = nr
            indeg[nxt] -= 1
            if indeg[nxt] == 0:
                heapq.heappush(heap, (nr, tasks[nxt].ckey, nxt))

    if scheduled != len(tasks):
        raise RuntimeError(
            f"task graph has a cycle: scheduled {scheduled} of {len(tasks)} tasks"
        )
    tl.recompute_makespan()
    return tl
