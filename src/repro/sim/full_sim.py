"""Full simulation algorithm (Algorithm 1 of the paper).

A Dijkstra-style sweep: tasks enter a global priority queue when all
predecessors have completed and are dequeued in increasing ``readyTime``
order (ties broken by the task's *canonical* key, see below).  Dequeuing
assigns ``startTime = max(readyTime, device.last.endTime)`` -- devices
process tasks FIFO by ready time (assumption A3) and begin work as soon
as inputs are available (assumption A4).

Ties are broken by :attr:`~repro.sim.taskgraph.Task.ckey`, a key derived
from the task's structural identity rather than its creation order.  Task
*ids* depend on the history of incremental reconfigurations (splices
allocate fresh ids), so id-based tie-breaking would make the simulated
makespan depend on the *path* the search took to reach a strategy.  With
canonical tie-breaking the timeline is a pure function of
``(operator graph, topology, strategy, training)`` -- the property that
the strategy-evaluation cache (:mod:`repro.search.cache`) and the
cross-worker reproducibility of parallel search
(:mod:`repro.search.parallel`) both rely on.
"""

from __future__ import annotations

import heapq
import sys

from repro.sim import kernels
from repro.sim.taskgraph import TaskGraph

__all__ = ["Timeline", "full_simulate"]


class Timeline:
    """Simulated schedule: per-task times plus per-device execution order.

    ``device_order[d]`` is the list of ``(readyTime, ckey, tid)`` triples
    of tasks executed on device ``d``, kept sorted -- which *is* the
    execution order, because FIFO-by-ready-time with deterministic
    tie-breaking makes "sorted by (readyTime, ckey)" and "execution order"
    the same thing.  The delta simulator relies on this invariant to
    maintain the ``preTask``/``nextTask`` chains of Table 2 implicitly.
    """

    __slots__ = ("ready", "start", "end", "device_order", "makespan")

    def __init__(self) -> None:
        self.ready: dict[int, float] = {}
        self.start: dict[int, float] = {}
        self.end: dict[int, float] = {}
        self.device_order: dict[int, list[tuple[float, tuple[int, ...], int]]] = {}
        self.makespan: float = 0.0

    def copy(self) -> "Timeline":
        tl = Timeline()
        tl.ready = dict(self.ready)
        tl.start = dict(self.start)
        tl.end = dict(self.end)
        tl.device_order = {d: list(v) for d, v in self.device_order.items()}
        tl.makespan = self.makespan
        return tl

    def copy_into(self, target: "Timeline") -> "Timeline":
        """Copy this timeline's state into ``target``, reusing its storage.

        Clearing and refilling the existing dicts (and per-device lists)
        keeps their already-grown hash tables and list buffers alive, so
        a caller that snapshots on every proposal -- the MCMC speculative
        path -- recycles one scratch timeline instead of allocating four
        dicts plus a list per device each iteration.
        """
        target.ready.clear()
        target.ready.update(self.ready)
        target.start.clear()
        target.start.update(self.start)
        target.end.clear()
        target.end.update(self.end)
        stale = target.device_order.keys() - self.device_order.keys()
        for d in stale:
            del target.device_order[d]
        for d, order in self.device_order.items():
            dst = target.device_order.get(d)
            if dst is None:
                target.device_order[d] = list(order)
            else:
                dst[:] = order
        target.makespan = self.makespan
        return target

    def equals(self, other: "Timeline", tol: float = 1e-9) -> bool:
        """Structural equality up to floating-point tolerance (for tests)."""
        if set(self.end) != set(other.end):
            return False
        return all(
            abs(self.ready[t] - other.ready[t]) <= tol
            and abs(self.start[t] - other.start[t]) <= tol
            and abs(self.end[t] - other.end[t]) <= tol
            for t in self.end
        )

    def recompute_makespan(self) -> float:
        self.makespan = max(self.end.values(), default=0.0)
        return self.makespan


def full_simulate(tg: TaskGraph) -> Timeline:
    """Simulate the task graph from scratch; returns the full timeline.

    The sweep runs on the flat :class:`~repro.sim.arrays.TaskArrays`
    substrate: per-slot state lives in dense lists, the heap orders by
    interned ckey *rank* (bit-identical pop order, integer comparisons),
    and per-device execution orders are built by plain ``append`` -- heap
    pops arrive in globally nondecreasing ``(readyTime, ckey)`` order
    (a dequeued task schedules successors at ``readyTime >= its own
    endTime >= its own readyTime``), so each device's subsequence is
    already sorted and the former per-pop ``insort`` was always an
    append.  Sortedness is asserted under pytest only.

    Raises ``RuntimeError`` if the task graph contains a dependency cycle
    (which would indicate a construction bug, not a user error).

    When the numpy kernels are enabled (the default; see
    :mod:`repro.sim.kernels`) the sweep below is replaced by a
    bit-identical level-batched drain; ``REPRO_SIM_KERNELS=python``
    forces this scalar reference.
    """
    if kernels.kernels_enabled():
        return kernels.full_kernel(tg)
    tl = Timeline()
    arr = tg.arrays
    exe, dev, rank, tids, ckeys = arr.exe, arr.dev, arr.rank, arr.tid, arr.ckey
    all_ins, all_outs = arr.ins, arr.outs
    num_slots = len(tids)
    total = arr.num_live

    indeg = [0] * num_slots
    slot_ready = [0.0] * num_slots
    heap: list[tuple[float, int, int]] = []
    for slot in range(num_slots):
        if tids[slot] == -1:
            continue
        n = len(all_ins[slot])
        indeg[slot] = n
        if n == 0:
            heap.append((0.0, rank[slot], slot))
    heapq.heapify(heap)

    dev_last_end: dict[int, float] = {}
    scheduled = 0
    ready = tl.ready
    start = tl.start
    end = tl.end
    order = tl.device_order
    check_sorted = "pytest" in sys.modules
    while heap:
        r, _, slot = heapq.heappop(heap)
        tid = tids[slot]
        d = dev[slot]
        s = dev_last_end.get(d, 0.0)
        if r > s:
            s = r
        e = s + exe[slot]
        ready[tid] = r
        start[tid] = s
        end[tid] = e
        dev_last_end[d] = e
        entry = (r, ckeys[slot], tid)
        lst = order.get(d)
        if lst is None:
            order[d] = [entry]
        else:
            if check_sorted:
                assert lst[-1] <= entry, (
                    f"device {d} execution order regressed: {lst[-1]} > {entry}"
                )
            lst.append(entry)
        scheduled += 1
        for nxt in all_outs[slot]:
            if e > slot_ready[nxt]:
                slot_ready[nxt] = e
            indeg[nxt] -= 1
            if indeg[nxt] == 0:
                heapq.heappush(heap, (slot_ready[nxt], rank[nxt], nxt))

    if scheduled != total:
        raise RuntimeError(
            f"task graph has a cycle: scheduled {scheduled} of {total} tasks"
        )
    tl.recompute_makespan()
    return tl
