"""Execution simulator (paper Section 5): task graphs, full & delta algorithms."""

# Bump whenever a simulator change can move the predicted cost of a
# strategy (task-graph construction, scheduling, tie-breaking, ...): the
# persistent strategy store (repro.search.store) keys on it, so bumping
# invalidates every cross-run cache entry without touching disk.
SIMULATOR_VERSION = 1

from repro.sim.arrays import TaskArrays
from repro.sim.delta_sim import DeltaStats, delta_simulate
from repro.sim.full_sim import Timeline, full_simulate
from repro.sim.metrics import IterationMetrics, compute_metrics, throughput_samples_per_sec
from repro.sim.propagate import propagate_simulate
from repro.sim.simulator import ALGORITHMS, Simulator, simulate_strategy
from repro.sim.taskgraph import Task, TaskGraph, TaskKind

__all__ = [
    "SIMULATOR_VERSION",
    "ALGORITHMS",
    "DeltaStats",
    "delta_simulate",
    "propagate_simulate",
    "Timeline",
    "full_simulate",
    "IterationMetrics",
    "compute_metrics",
    "throughput_samples_per_sec",
    "Simulator",
    "simulate_strategy",
    "Task",
    "TaskArrays",
    "TaskGraph",
    "TaskKind",
]
