"""Execution simulator (paper Section 5): task graphs, full & delta algorithms."""

from repro.sim.delta_sim import DeltaStats, delta_simulate
from repro.sim.full_sim import Timeline, full_simulate
from repro.sim.metrics import IterationMetrics, compute_metrics, throughput_samples_per_sec
from repro.sim.simulator import Simulator, simulate_strategy
from repro.sim.taskgraph import Task, TaskGraph, TaskKind

__all__ = [
    "DeltaStats",
    "delta_simulate",
    "Timeline",
    "full_simulate",
    "IterationMetrics",
    "compute_metrics",
    "throughput_samples_per_sec",
    "Simulator",
    "simulate_strategy",
    "Task",
    "TaskGraph",
    "TaskKind",
]
