"""Setup shim for the offline execution environment.

The environment pins setuptools 65.5.0, which crashes on pyproject-only
builds with ``AttributeError: 'Distribution' object has no attribute
'include_package_data'`` (setuptools issue #3586, fixed in 65.5.1).
Passing the attribute explicitly here sidesteps the bug; all real
metadata lives in pyproject.toml.
"""

from setuptools import setup

setup(include_package_data=False)
