"""Distributed strategy search: fan MCMC chains out to worker daemons.

The MCMC execution optimizer is embarrassingly parallel across chains,
and the chain executor is pluggable (:mod:`repro.search.exec`): this
example spawns two *loopback* worker daemons -- stand-ins for daemons on
other machines started with ``python -m repro.search.worker --bind
0.0.0.0:7070`` -- runs the same search through the ``inprocess`` and
``distributed`` executors, and shows the results are bit-identical.  It
also demonstrates the remote store flush: the workers share no
filesystem with the coordinator, yet their strategy evaluations land in
the coordinator's persistent store and warm the next search.

Run:  python examples/distributed_search.py
"""

import tempfile

from repro.machine import single_node
from repro.models import lenet
from repro.plan import BudgetConfig, ExecutionConfig, Planner, SearchConfig, StoreConfig
from repro.search.worker import spawn_local_worker


def main() -> None:
    # 1. The problem: LeNet on four P100 GPUs (small enough that the
    #    whole demo -- three searches -- finishes in seconds).
    graph = lenet(batch=64)
    topo = single_node(4, "p100")
    planner = Planner(graph, topo)

    # 2. Two loopback worker daemons.  On a real cluster these run as
    #    `python -m repro.search.worker --bind 0.0.0.0:7070` on each
    #    machine and `cluster` lists their host:port addresses
    #    (REPRO_CLUSTER=gpu-a:7070,gpu-b:7070 for the bench harness).
    workers = [spawn_local_worker() for _ in range(2)]
    cluster = tuple(addr for _, addr in workers)
    print(f"worker daemons: {', '.join(cluster)}\n")

    store_dir = tempfile.mkdtemp(prefix="repro-store-")
    base = SearchConfig(
        budget=BudgetConfig(iterations=150),
        seed=0,
        inits=("data_parallel", "random", "random", "random"),
        store=StoreConfig(root=store_dir),
    )

    try:
        # 3. The same search through two executors.  The executor is a
        #    pure capacity decision: identical seeds => identical result.
        #    (The in-process run skips the store so the distributed run
        #    below is genuinely cold.)
        local = planner.search(
            "mcmc",
            base.replace(
                execution=ExecutionConfig(executor="inprocess"),
                store=StoreConfig(root=None),
            ),
        )
        dist = planner.search(
            "mcmc",
            base.replace(
                execution=ExecutionConfig(executor="distributed", cluster=cluster)
            ),
        )
        print(f"inprocess:   best {local.best_cost_us / 1e3:.3f} ms "
              f"in {local.wall_time_s:.2f} s ({local.simulations} simulations)")
        print(f"distributed: best {dist.best_cost_us / 1e3:.3f} ms "
              f"in {dist.wall_time_s:.2f} s ({dist.simulations} simulations, "
              f"{dist.extras['workers']} worker daemons)")
        assert dist.best_cost_us == local.best_cost_us
        assert dist.best_strategy.signature() == local.best_strategy.signature()
        print("bit-identical best strategy across executors\n")

        # 4. Remote store flush: the daemons never touched store_dir, but
        #    their evaluations were shipped back and persisted by the
        #    coordinator -- so a re-run is answered from the store.
        warm = planner.search(
            "mcmc",
            base.replace(
                execution=ExecutionConfig(executor="distributed", cluster=cluster)
            ),
        )
        s = warm.store_stats
        print(f"warm re-run: {s.warm_hits} warm store hits "
              f"({warm.simulations} simulations vs {dist.simulations} cold)")
    finally:
        for proc, _ in workers:
            proc.terminate()
        for proc, _ in workers:
            proc.wait(timeout=10)


if __name__ == "__main__":
    main()
