"""Reproduce the Figure 11 scatter: simulated vs measured execution time.

Evaluates several strategies per (model, machine) pair with both the
execution simulator and the high-fidelity reference executor, then prints
the relative differences and checks that the simulator preserves the
ordering of strategies -- the property that makes simulated time a valid
search objective.

Run:  python examples/simulator_accuracy.py
"""

import numpy as np

from repro.bench import print_table
from repro.machine import p100_cluster, single_node
from repro.models import inception_v3, rnnlm
from repro.profiler import OpProfiler
from repro.runtime import ReferenceConfig, reference_execute
from repro.sim import TaskGraph, full_simulate
from repro.soap import ConfigSpace, data_parallelism, expert_strategy


def main() -> None:
    rng = np.random.default_rng(0)
    cases = {
        "inception/4xP100": (inception_v3(batch=64), single_node(4, "p100")),
        "rnnlm/8xP100": (rnnlm(batch=64, steps=6, hidden=1024, vocab=8000), p100_cluster(2, 4)),
    }
    rows = []
    for case, (graph, topo) in cases.items():
        profiler = OpProfiler(noise_amplitude=0.02)
        space = ConfigSpace(graph, topo, contiguous_bias=1.0)
        strategies = {
            "data_parallel": data_parallelism(graph, topo),
            "expert": expert_strategy(graph, topo),
            "random0": space.random_strategy(rng),
            "random1": space.random_strategy(rng),
        }
        sims, reals = {}, {}
        for name, strat in strategies.items():
            tg = TaskGraph(graph, topo, strat, profiler)
            sims[name] = full_simulate(tg).makespan
            reals[name] = reference_execute(tg, ReferenceConfig(seed=11)).makespan_us
            rows.append(
                {
                    "case": case,
                    "strategy": name,
                    "simulated_ms": sims[name] / 1e3,
                    "measured_ms": reals[name] / 1e3,
                    "rel_diff_%": (reals[name] - sims[name]) / reals[name] * 100,
                }
            )
        sim_order = sorted(sims, key=sims.get)
        real_order = sorted(reals, key=reals.get)
        print(f"{case}: ordering preserved = {sim_order == real_order}")
    print_table(rows, "Simulated vs measured execution time (Figure 11)")


if __name__ == "__main__":
    main()
