"""Portability: how the best strategy changes with the machine.

One of FlexFlow's selling points (Section 3.1) is that the search adapts
to the hardware without application changes.  This example runs the same
RNNLM graph on three different machines and shows that the optimizer
picks different strategies -- and that a strategy tuned for one machine
behaves poorly when transplanted onto another.

Run:  python examples/custom_cluster.py
"""

from repro.bench import print_table
from repro.machine import k80_cluster, p100_cluster, single_node, uniform_cluster
from repro.models import rnnlm
from repro.plan import BudgetConfig, Planner, SearchConfig
from repro.profiler import OpProfiler
from repro.sim import simulate_strategy


def main() -> None:
    graph = rnnlm(batch=64, steps=6, hidden=1024, vocab=8000)
    machines = {
        "1 node x 4 P100 (NVLink)": single_node(4, "p100"),
        "2 nodes x 2 P100 (EDR IB)": p100_cluster(num_nodes=2, gpus_per_node=2),
        "slow-network cluster": uniform_cluster(2, 2, intra_gbps=20.0, inter_gbps=1.0, name="slownet"),
    }
    profiler = OpProfiler()
    # One SearchConfig, one planner per machine: only the problem changes.
    cfg = SearchConfig(budget=BudgetConfig(iterations=250), seed=0)
    results = {}
    rows = []
    for name, topo in machines.items():
        res = Planner(graph, topo, profiler=profiler).search("mcmc", cfg)
        results[name] = res
        rows.append(
            {
                "machine": name,
                "best_iter_ms": res.best_cost_us / 1e3,
                "vs_data_parallel": res.extras["init_costs"]["data_parallel"] / res.best_cost_us,
                "devices_used": len(res.best_strategy.devices_used()),
            }
        )
    print_table(rows, "Best strategy per machine")

    # Transplant the NVLink-tuned strategy onto the slow-network cluster.
    nvlink_best = results["1 node x 4 P100 (NVLink)"].best_strategy
    slow = machines["slow-network cluster"]
    transplanted = simulate_strategy(graph, slow, nvlink_best, profiler)
    native = results["slow-network cluster"].best_cost_us
    print(
        f"NVLink-tuned strategy on the slow network: {transplanted.makespan_us / 1e3:.2f} ms "
        f"vs natively searched {native / 1e3:.2f} ms "
        f"({transplanted.makespan_us / native:.2f}x worse) -- strategies do not port."
    )


if __name__ == "__main__":
    main()
