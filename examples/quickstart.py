"""Quickstart: find a parallelization strategy for LeNet on 4 GPUs.

Builds an operator graph, describes a machine, and drives the unified
planner API (:mod:`repro.plan`): one ``Planner`` per ``(graph, machine)``
problem, one serializable ``SearchConfig`` for search policy, and any
registered backend -- ``mcmc``, ``optcnn``, ``reinforce``,
``exhaustive`` -- runnable through the same two entry points,
``Planner.search`` and ``Planner.compare``.

Run:  python examples/quickstart.py
"""

from repro.bench import print_table
from repro.machine import single_node
from repro.models import lenet
from repro.plan import BudgetConfig, Planner, SearchConfig, comparison_rows
from repro.profiler import OpProfiler
from repro.sim import simulate_strategy
from repro.soap import data_parallelism
from repro.viz import render_strategy


def main() -> None:
    # 1. The application: an operator graph (Section 3.1).
    graph = lenet(batch=64)
    print(graph.describe(), "\n")

    # 2. The machine: four P100 GPUs on one NVLink node.
    topo = single_node(4, "p100")
    print(topo.describe(), "\n")

    # 3. The baseline every framework gives you: data parallelism.
    profiler = OpProfiler()
    dp = simulate_strategy(graph, topo, data_parallelism(graph, topo), profiler)
    print(f"data parallelism: {dp.makespan_us / 1e3:.3f} ms/iteration, "
          f"{dp.total_comm_gb * 1e3:.1f} MB moved\n")

    # 4. The execution optimizer: MCMC over the SOAP space (Section 6),
    #    through the unified planner facade.  The config is a frozen
    #    dataclass that round-trips through JSON (`cfg.to_json()`), ready
    #    to ship to remote search workers.
    planner = Planner(graph, topo, profiler=profiler)
    cfg = SearchConfig(
        budget=BudgetConfig(iterations=500),
        seed=0,
        backend_options={"reinforce": {"episodes": 100}},
    )
    result = planner.search("mcmc", cfg)
    print(result.summary(), "\n")

    # 5. What the strategy looks like (cf. Figure 13's rendering).
    print(render_strategy(graph, result.best_strategy))

    # 6. The same problem under every automated baseline the paper
    #    compares against (Section 8.2.3) -- one call, one shared table.
    results = planner.compare(["mcmc", "optcnn", "reinforce"], cfg)
    print_table(comparison_rows(results, batch=64), "Backend comparison")

    # 7. Timeline algorithms: proposals are simulated incrementally.
    #    "delta" (default) re-simulates the suffix after the earliest
    #    change; "propagate" is the paper's true change-propagation
    #    engine -- it walks only actually-changed tasks and skips
    #    unaffected parallel branches, repairing orders of magnitude
    #    fewer tasks when a splice's timeline impact is localized.
    #    All three algorithms are bit-identical, so this is purely a
    #    throughput knob (REPRO_SIM_ALGO in the bench harness):
    prop = planner.search("mcmc", cfg.replace(algorithm="propagate"))
    assert prop.best_cost_us == result.best_cost_us  # bit-identical
    print(f"\nalgorithm='propagate' agrees bitwise: "
          f"{prop.best_cost_us / 1e3:.3f} ms best iteration")

    # 8. Experiments: the paper's whole evaluation grid -- models x
    #    clusters x backends x seeds x store warm/cold x executors -- is
    #    one declarative JSON spec, executed into a persistent results
    #    table (append-only JSONL, nothing ever overwritten):
    #
    #        python -m repro.exp run examples/experiments/ci_grid.json
    #        python -m repro.exp run examples/experiments/ci_grid.json --fresh
    #        python -m repro.exp report examples/experiments/ci_grid.json
    #
    #    Re-running a spec resumes it (recorded trials are skipped, so a
    #    killed run picks up where it stopped); a failed trial records an
    #    error row and the run continues.  `report` renders the
    #    per-group comparison table plus per-trial regression deltas
    #    against the previous run, and exits non-zero past the spec's
    #    threshold -- the CI gate.  The same grid is scriptable:
    from repro.exp import load_spec

    spec = load_spec("examples/experiments/ci_grid.json")
    print(f"\nexperiment spec '{spec.name}': {len(spec.trials())} trials, "
          f"first: {spec.trials()[0].trial_id}")

    # 9. Distributed search: the MCMC chains can run on worker daemons
    #    instead of this process.  Start one per machine:
    #
    #        python -m repro.search.worker --bind 0.0.0.0:7070
    #
    #    (--capacity N serves N concurrent chains per daemon) and point
    #    the (still JSON-serializable) config at them:
    #
    #        cfg = cfg.replace(execution=ExecutionConfig(
    #            executor="distributed",
    #            cluster=("gpu-a:7070", "gpu-b:7070*2"),  # *2 caps in-flight chains
    #        ))
    #        planner.search("mcmc", cfg)
    #
    #    Results are bit-identical to the local executors for the same
    #    seeds; dead workers re-queue their chains (an errored chain is
    #    retried once on a different worker) and evaluations flush back
    #    to the coordinator's store without a shared filesystem.
    #    See examples/distributed_search.py for a runnable loopback demo.
    print("\ndistributed search: see examples/distributed_search.py "
          "(python -m repro.search.worker --bind HOST:PORT)")

    # 10. Planner as a service: a resident server (python -m
    #    repro.plan.serve) interns the problem on first sight and keeps
    #    store shards open, so repeat requests skip the setup entirely --
    #    and concurrent identical requests collapse onto one search.
    #    Against a real deployment you would just connect:
    #
    #        with PlanClient("plan-host:7180") as client:
    #            result = client.plan(graph, topo, config=cfg)
    #
    #    Here we spawn a loopback server to show the cold/warm split:
    import signal

    from repro.plan import PlanClient
    from repro.plan.serve import spawn_local_server

    proc, addr = spawn_local_server()
    try:
        small = cfg.replace(budget=BudgetConfig(iterations=50))
        with PlanClient(addr) as client:
            cold = client.plan(graph, topo, config=small)  # ships the problem
            warm = client.plan(graph, topo, config=small.replace(seed=1))  # bare digest
        c, w = cold.extras["serve"], warm.extras["serve"]
        print(f"\nplanning server at {addr}: cold setup "
              f"{c['setup_s'] * 1e3:.2f} ms -> warm setup {w['setup_s'] * 1e3:.3f} ms "
              f"(problem interned server-side)")
    finally:
        proc.send_signal(signal.SIGTERM)  # graceful drain: finishes, flushes, exits 0
        proc.wait(timeout=30)


if __name__ == "__main__":
    main()
