"""Quickstart: find a parallelization strategy for LeNet on 4 GPUs.

Builds an operator graph, describes a machine, runs the execution
optimizer, and prints the discovered strategy next to the data-parallel
baseline -- the minimal end-to-end tour of the library.

Run:  python examples/quickstart.py
"""

from repro.machine import single_node
from repro.models import lenet
from repro.profiler import OpProfiler
from repro.search import optimize
from repro.sim import simulate_strategy
from repro.soap import data_parallelism
from repro.viz import render_strategy


def main() -> None:
    # 1. The application: an operator graph (Section 3.1).
    graph = lenet(batch=64)
    print(graph.describe(), "\n")

    # 2. The machine: four P100 GPUs on one NVLink node.
    topo = single_node(4, "p100")
    print(topo.describe(), "\n")

    # 3. The baseline every framework gives you: data parallelism.
    profiler = OpProfiler()
    dp = simulate_strategy(graph, topo, data_parallelism(graph, topo), profiler)
    print(f"data parallelism: {dp.makespan_us / 1e3:.3f} ms/iteration, "
          f"{dp.total_comm_gb * 1e3:.1f} MB moved\n")

    # 4. The execution optimizer: MCMC over the SOAP space (Section 6).
    result = optimize(graph, topo, profiler=profiler, budget_iters=500, seed=0)
    print(result.summary(), "\n")

    # 5. What the strategy looks like (cf. Figure 13's rendering).
    print(render_strategy(graph, result.best_strategy))


if __name__ == "__main__":
    main()
