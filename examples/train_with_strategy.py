"""Training correctness demo: every strategy computes the same function.

Trains LeNet on a synthetic image task with the reference engine while
checking, at several points, that executing the forward pass under a
random SOAP strategy (task-by-task on sub-tensors, parameter shards and
all) produces bit-comparable outputs -- the property behind the paper's
Table 3 ("FlexFlow ... achieves the same model accuracy").

Run:  python examples/train_with_strategy.py
"""

import numpy as np

from repro.machine import single_node
from repro.models import lenet
from repro.runtime import (
    Trainer,
    distributed_forward,
    reference_forward,
    synthetic_images,
)
from repro.soap import ConfigSpace


def main() -> None:
    graph = lenet(batch=32)
    topo = single_node(4, "p100")
    space = ConfigSpace(graph, topo)
    rng = np.random.default_rng(0)
    strategy = space.random_strategy(rng)

    trainer = Trainer(graph, lr=0.01, seed=0)
    dataset = synthetic_images(n=512, seed=0)

    print("epoch  loss    acc    max|distributed - reference|")
    for epoch in range(6):
        hist = trainer.train(dataset, epochs=1, seed=epoch)
        # Verify strategy-equivalence on a fresh batch with live weights.
        xb = dataset.x[:32].astype(np.float32)
        inputs = {graph.sources[0]: xb}
        ref = reference_forward(graph, trainer.params, inputs)
        dist = distributed_forward(graph, strategy, trainer.params, inputs)
        err = max(float(np.abs(dist[o] - ref[o]).max()) for o in graph.op_ids)
        print(
            f"{epoch:>5}  {hist.losses[-1]:.4f}  {hist.accuracies[-1]:.3f}  {err:.2e}"
        )
    print(f"\nfinal accuracy: {trainer.evaluate(dataset):.3f}")
    print("distributed execution stayed numerically identical throughout training.")


if __name__ == "__main__":
    main()
