"""Parallelizing Inception-v3 across a multi-node P100 cluster.

Reproduces the Figure 13 workflow: compare data parallelism, the
"one weird trick" expert strategy, and the SOAP search on the paper's
P100 cluster, then show where the discovered strategy spends its time.

Run:  python examples/cnn_search.py [--gpus 8] [--iters 300]

Warm-cache reruns
-----------------
Pass ``--store-dir`` (or export ``REPRO_CACHE_DIR``) to persist every
strategy evaluation to disk.  The first run over a given (model,
cluster) pair is a normal cold search that populates the store; any
rerun -- tweaking ``--iters``, comparing ``--workers``, or repeating a
sweep -- answers proposals from the store and skips the simulator almost
entirely, at identical results::

    python examples/cnn_search.py --gpus 8 --store-dir ~/.cache/repro   # cold
    python examples/cnn_search.py --gpus 8 --store-dir ~/.cache/repro   # warm, many times faster

The store is keyed by a composite fingerprint of the graph, topology,
and simulator/cost-model versions: changing the model or the cluster
keys a fresh context automatically, and code changes to the cost model
or simulator are invalidated by bumping ``COST_MODEL_VERSION`` /
``SIMULATOR_VERSION`` alongside the change (a stale store is never
detected by magic -- the version constants are the contract).
"""

import argparse

from repro.bench import print_table, strategy_rows
from repro.machine import p100_cluster
from repro.models import inception_v3
from repro.plan import BudgetConfig, ExecutionConfig, Planner, SearchConfig, StoreConfig
from repro.profiler import OpProfiler
from repro.search import default_store_root
from repro.sim import TaskGraph, full_simulate
from repro.soap import data_parallelism, expert_strategy
from repro.viz import device_utilization_bars


def main() -> None:
    ap = argparse.ArgumentParser()
    ap.add_argument("--gpus", type=int, default=8, choices=(4, 8, 16))
    ap.add_argument("--iters", type=int, default=300)
    ap.add_argument(
        "--workers",
        type=int,
        default=1,
        help="processes for chain fan-out (same result for any value)",
    )
    ap.add_argument(
        "--cache-size", type=int, default=4096, help="strategy-evaluation cache entries (0 = off)"
    )
    ap.add_argument(
        "--store-dir",
        default=default_store_root(),
        help="persistent strategy-store directory for warm reruns "
        "(default: $REPRO_CACHE_DIR; omit to disable persistence)",
    )
    args = ap.parse_args()

    graph = inception_v3(batch=64)
    topo = p100_cluster(num_nodes=max(1, args.gpus // 4), gpus_per_node=min(4, args.gpus))
    profiler = OpProfiler()
    print(f"Inception-v3 ({graph.num_ops} ops) on {topo.name}\n")

    planner = Planner(graph, topo, profiler=profiler)
    result = planner.search(
        "mcmc",
        SearchConfig(
            budget=BudgetConfig(iterations=args.iters),
            execution=ExecutionConfig(workers=args.workers, cache_size=args.cache_size),
            store=StoreConfig(root=args.store_dir),
            seed=0,
        ),
    )
    rows = strategy_rows(
        graph,
        topo,
        batch=64,
        strategies={
            "data_parallel": data_parallelism(graph, topo),
            "expert (OWT)": expert_strategy(graph, topo),
            "flexflow": result,  # strategy_rows unwraps the PlanResult
        },
        profiler=profiler,
    )
    print_table(rows, "Per-iteration comparison")
    print(result.summary(), "\n")

    tg = TaskGraph(graph, topo, result.best_strategy, profiler)
    print("Device utilization under the discovered strategy:")
    print(device_utilization_bars(tg, full_simulate(tg)))


if __name__ == "__main__":
    main()
