"""The Figure 14 case study: heterogeneous per-layer NMT parallelization.

Searches the SOAP space for the NMT model on 4 P100 GPUs and prints the
per-layer summary that mirrors Figure 14: embeddings concentrated,
vocabulary-sized softmax layers split along the channel (parameter)
dimension, LSTM layers combining batch and inter-layer parallelism.

Run:  python examples/nmt_search.py [--steps 10] [--iters 400]

Warm-cache reruns
-----------------
As in ``cnn_search.py``, ``--store-dir`` (or ``REPRO_CACHE_DIR``)
persists strategy evaluations across runs.  NMT searches are the
longest in the suite -- unrolled LSTM stacks produce big task graphs --
so warm reruns pay off the most here::

    python examples/nmt_search.py --steps 10 --store-dir ~/.cache/repro   # cold
    python examples/nmt_search.py --steps 10 --store-dir ~/.cache/repro   # warm

Changing ``--steps`` (a different unrolled graph) keys a different store
context: warm entries are only reused where they are provably valid.
"""

import argparse

from repro.bench import print_table, strategy_rows
from repro.machine import single_node
from repro.models import nmt
from repro.plan import BudgetConfig, ExecutionConfig, Planner, SearchConfig, StoreConfig
from repro.profiler import OpProfiler
from repro.search import default_store_root
from repro.soap import data_parallelism, expert_strategy
from repro.viz import render_layer_summary


def main() -> None:
    ap = argparse.ArgumentParser()
    ap.add_argument("--steps", type=int, default=10, help="unrolled steps per side (paper: 40)")
    ap.add_argument("--iters", type=int, default=400)
    ap.add_argument(
        "--workers",
        type=int,
        default=1,
        help="processes for chain fan-out (same result for any value)",
    )
    ap.add_argument(
        "--cache-size", type=int, default=4096, help="strategy-evaluation cache entries (0 = off)"
    )
    ap.add_argument(
        "--store-dir",
        default=default_store_root(),
        help="persistent strategy-store directory for warm reruns "
        "(default: $REPRO_CACHE_DIR; omit to disable persistence)",
    )
    args = ap.parse_args()

    graph = nmt(batch=64, src_len=args.steps, tgt_len=args.steps, hidden=1024, vocab=16384)
    topo = single_node(4, "p100")
    profiler = OpProfiler()
    print(f"NMT ({graph.num_ops} ops, {len(graph.param_groups())} weight groups) on {topo.name}\n")

    planner = Planner(graph, topo, profiler=profiler)
    result = planner.search(
        "mcmc",
        SearchConfig(
            budget=BudgetConfig(iterations=args.iters),
            execution=ExecutionConfig(workers=args.workers, cache_size=args.cache_size),
            store=StoreConfig(root=args.store_dir),
            seed=0,
        ),
    )
    rows = strategy_rows(
        graph,
        topo,
        batch=64,
        strategies={
            "data_parallel": data_parallelism(graph, topo),
            "expert (GNMT)": expert_strategy(graph, topo),
            "flexflow": result,  # strategy_rows unwraps the PlanResult
        },
        profiler=profiler,
    )
    print_table(rows, "Per-iteration comparison")

    print("Discovered per-layer configurations (cf. Figure 14):")
    print(render_layer_summary(graph, result.best_strategy))


if __name__ == "__main__":
    main()
